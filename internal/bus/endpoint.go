package bus

import (
	"context"
	"sync"
)

// Endpoint is a component's mailbox on the bus. Receivers consume messages
// in delivery order; the endpoint also keeps per-source sequence accounting
// so tests and the RAML guard can verify FIFO preservation across
// reconfigurations.
//
// The mailbox is a growable ring buffer: it starts small, doubles up to the
// configured capacity, and reuses slots afterwards, so steady-state
// enqueue/dequeue allocates nothing. The endpoint shares its mutex with the
// bus route that owns it: sequence assignment, the paused check and the
// enqueue are one critical section, and a delivery pays for one lock, not
// two.
type Endpoint struct {
	addr Address

	mu      *sync.Mutex // shared with the owning route
	buf     []Message   // ring storage; len(buf) is the current allocation
	head    int         // index of the oldest message
	count   int         // messages currently queued
	cap     int         // hard mailbox capacity
	closed  bool
	waiting int           // receivers parked in select, guarded by mu
	notify  chan struct{} // capacity 1: wake one waiting receiver
	done    chan struct{} // closed on close(): broadcast to all receivers

	received  uint64
	arrivals  seqTable // last seen per-source sequence; the dst is fixed
	reordered uint64
	duplicate uint64
}

const initialRing = 16

func newEndpoint(addr Address, capacity int, mu *sync.Mutex) *Endpoint {
	ring := initialRing
	if capacity < ring {
		ring = capacity
	}
	return &Endpoint{
		addr:     addr,
		mu:       mu,
		buf:      make([]Message, ring),
		cap:      capacity,
		notify:   make(chan struct{}, 1),
		done:     make(chan struct{}),
		arrivals: newSeqTable(),
	}
}

// Addr returns the endpoint's bus address.
func (e *Endpoint) Addr() Address { return e.addr }

// pushLocked appends m to the ring, growing it if allowed; callers hold
// e.mu and have checked count < cap.
func (e *Endpoint) pushLocked(m *Message) {
	if e.count == len(e.buf) {
		grown := len(e.buf) * 2
		if grown > e.cap {
			grown = e.cap
		}
		next := make([]Message, grown)
		n := copy(next, e.buf[e.head:])
		copy(next[n:], e.buf[:e.head])
		e.buf = next
		e.head = 0
	}
	e.buf[(e.head+e.count)%len(e.buf)] = *m
	e.count++
}

// popLocked removes and returns the oldest message; callers hold e.mu and
// have checked count > 0. The slot is zeroed so the ring does not retain
// payload references.
func (e *Endpoint) popLocked() Message {
	m := e.buf[e.head]
	e.buf[e.head] = Message{}
	e.head = (e.head + 1) % len(e.buf)
	e.count--
	return m
}

// enqueueLocked appends m and wakes a parked receiver if one is waiting; it
// reports false when the mailbox is full or closed. Callers hold e.mu (the
// route lock).
func (e *Endpoint) enqueueLocked(m *Message) bool {
	if e.closed || e.count >= e.cap {
		return false
	}
	e.pushLocked(m)
	e.received++
	cell := e.arrivals.cell(m.Src)
	switch last := *cell; {
	case m.Seq == last && m.Seq != 0:
		e.duplicate++
	case m.Seq < last:
		e.reordered++
	default:
		*cell = m.Seq
	}
	if e.waiting > 0 {
		select {
		case e.notify <- struct{}{}:
		default:
		}
	}
	return true
}

// Receive blocks until a message arrives, the endpoint closes, or ctx is
// done.
func (e *Endpoint) Receive(ctx context.Context) (Message, error) {
	registered := false
	for {
		e.mu.Lock()
		if registered {
			e.waiting--
			registered = false
		}
		if e.count > 0 {
			m := e.popLocked()
			if e.count > 0 && e.waiting > 0 {
				// Rearm the wakeup for other receivers.
				select {
				case e.notify <- struct{}{}:
				default:
				}
			}
			e.mu.Unlock()
			return m, nil
		}
		if e.closed {
			e.mu.Unlock()
			return Message{}, ErrClosed
		}
		// Register before releasing the lock: enqueueLocked only notifies
		// when it observes a waiter, and it observes under the same lock.
		e.waiting++
		registered = true
		e.mu.Unlock()
		select {
		case <-e.notify:
		case <-e.done:
		case <-ctx.Done():
			e.mu.Lock()
			e.waiting--
			e.mu.Unlock()
			return Message{}, ctx.Err()
		}
	}
}

// TryReceive pops a message without blocking; ok is false when empty.
func (e *Endpoint) TryReceive() (Message, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.count == 0 {
		return Message{}, false
	}
	return e.popLocked(), true
}

// Len reports queued messages.
func (e *Endpoint) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.count
}

// Received reports the total number of messages ever enqueued.
func (e *Endpoint) Received() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.received
}

// Anomalies reports (duplicates, reorderings) observed in the per-source
// sequence numbers.
func (e *Endpoint) Anomalies() (dups, reorders uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.duplicate, e.reordered
}

// close marks the endpoint closed and wakes all blocked receivers. Queued
// messages remain readable via TryReceive.
func (e *Endpoint) close() {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.done)
	}
	e.mu.Unlock()
}
