// Package bus implements the software bus underlying all component
// communication — the analogue of the Polylith software bus the paper builds
// its reconfiguration sequence on (§1): reaching reconfiguration points,
// "blocking communication channels (to manage the messages in transit)",
// redirecting calls to new components, and accounting for loss, duplication
// and delay so that experiment E4 can verify the channel-preservation
// guarantees.
package bus

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
)

// Address identifies an attached endpoint (a component port).
type Address string

// Kind classifies a message.
type Kind int

// Message kinds.
const (
	Request Kind = iota + 1
	Reply
	Event
	Control
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Request:
		return "request"
	case Reply:
		return "reply"
	case Event:
		return "event"
	case Control:
		return "control"
	default:
		return "unknown"
	}
}

// Message is the unit of communication. Payload stays untyped; typed
// contracts are enforced above the bus by connectors and the registry.
type Message struct {
	ID      uint64 // bus-unique, assigned on Send
	Kind    Kind
	Op      string // operation name, e.g. "encode"
	Payload any
	Src     Address
	Dst     Address
	Seq     uint64 // per (Src,Dst) FIFO sequence, assigned on Send
	Corr    uint64 // request/reply correlation
	SentAt  time.Time
}

// Verdict is an interceptor's decision about a message.
type Verdict int

// Interceptor verdicts.
const (
	Pass Verdict = iota + 1
	Drop
	Redirected // interceptor rewrote m.Dst
)

// Interceptor sees every message on the bus before routing. Injectors and
// bus-level filters are installed through this hook. Intercept may modify
// the message in place (transform), rewrite its destination (returning
// Redirected) or discard it (Drop).
type Interceptor interface {
	Name() string
	Intercept(m *Message) Verdict
}

// DelayFunc returns the transmission delay from src to dst; the network
// simulator plugs in here. A zero or negative delay delivers synchronously.
type DelayFunc func(src, dst Address) time.Duration

// Bus errors.
var (
	ErrAddressTaken  = errors.New("bus: address already attached")
	ErrUnknownDst    = errors.New("bus: unknown destination")
	ErrClosed        = errors.New("bus: endpoint closed")
	ErrMailboxFull   = errors.New("bus: mailbox full")
	ErrRedirectCycle = errors.New("bus: redirect cycle")
)

// Stats are cumulative bus counters. Conservation invariant when idle:
// Sent == Delivered + Dropped + Held.
type Stats struct {
	Sent      uint64
	Delivered uint64
	Dropped   uint64 // discarded by interceptors
	Held      uint64 // currently parked on paused channels
	InFlight  uint64 // currently delayed in the "network"
	Redirects uint64
}

// Bus routes messages between attached endpoints.
type Bus struct {
	clk clock.Clock

	mu           sync.Mutex
	endpoints    map[Address]*Endpoint
	paused       map[Address]bool
	held         map[Address][]Message
	redirects    map[Address]Address
	interceptors []Interceptor
	delayFn      DelayFunc
	nextID       uint64
	pairSeq      map[pairKey]uint64
	stats        Stats
	idleWaiters  []chan struct{}
}

type pairKey struct{ src, dst Address }

// Option configures a Bus.
type Option func(*Bus)

// WithClock sets the clock used for delayed delivery timestamps.
func WithClock(c clock.Clock) Option { return func(b *Bus) { b.clk = c } }

// WithDelay installs the transmission-delay model.
func WithDelay(f DelayFunc) Option { return func(b *Bus) { b.delayFn = f } }

// New creates an empty bus. Without options it uses the real clock and zero
// transmission delay.
func New(opts ...Option) *Bus {
	b := &Bus{
		clk:       clock.Real{},
		endpoints: map[Address]*Endpoint{},
		paused:    map[Address]bool{},
		held:      map[Address][]Message{},
		redirects: map[Address]Address{},
		pairSeq:   map[pairKey]uint64{},
	}
	for _, o := range opts {
		o(b)
	}
	return b
}

// Attach registers addr and returns its endpoint. mailbox is the bounded
// queue capacity; values < 1 get the default of 4096.
func (b *Bus) Attach(addr Address, mailbox int) (*Endpoint, error) {
	if mailbox < 1 {
		mailbox = 4096
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.endpoints[addr]; ok {
		return nil, fmt.Errorf("%w: %s", ErrAddressTaken, addr)
	}
	e := newEndpoint(addr, mailbox)
	b.endpoints[addr] = e
	return e, nil
}

// Detach closes and removes the endpoint at addr. Held and in-flight
// messages toward addr are kept until redirected or transferred.
func (b *Bus) Detach(addr Address) {
	b.mu.Lock()
	e := b.endpoints[addr]
	delete(b.endpoints, addr)
	b.mu.Unlock()
	if e != nil {
		e.close()
	}
}

// AddInterceptor appends an interceptor to the chain (applied in order).
func (b *Bus) AddInterceptor(i Interceptor) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.interceptors = append(b.interceptors, i)
}

// RemoveInterceptor removes the named interceptor; it reports success.
func (b *Bus) RemoveInterceptor(name string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, ic := range b.interceptors {
		if ic.Name() == name {
			b.interceptors = append(b.interceptors[:i], b.interceptors[i+1:]...)
			return true
		}
	}
	return false
}

// Send routes m toward m.Dst, applying redirects, interceptors and the
// delay model. It never blocks on the receiver: a full mailbox returns
// ErrMailboxFull (backpressure), a paused destination parks the message.
func (b *Bus) Send(m Message) error {
	b.mu.Lock()
	dst, err := b.resolveLocked(m.Dst)
	if err != nil {
		b.mu.Unlock()
		return err
	}
	if dst != m.Dst {
		b.stats.Redirects++
		m.Dst = dst
	}

	verdict := Pass
	for _, ic := range b.interceptors {
		verdict = ic.Intercept(&m)
		if verdict == Drop {
			b.stats.Dropped++
			b.stats.Sent++
			b.notifyIfIdleLocked()
			b.mu.Unlock()
			return nil
		}
		if verdict == Redirected {
			if m.Dst, err = b.resolveLocked(m.Dst); err != nil {
				b.mu.Unlock()
				return err
			}
			b.stats.Redirects++
		}
	}

	if _, ok := b.endpoints[m.Dst]; !ok && !b.paused[m.Dst] {
		b.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownDst, m.Dst)
	}

	b.nextID++
	m.ID = b.nextID
	pk := pairKey{m.Src, m.Dst}
	b.pairSeq[pk]++
	m.Seq = b.pairSeq[pk]
	m.SentAt = b.clk.Now()
	b.stats.Sent++

	delay := time.Duration(0)
	if b.delayFn != nil {
		delay = b.delayFn(m.Src, m.Dst)
	}
	if delay > 0 {
		b.stats.InFlight++
		b.mu.Unlock()
		b.clk.AfterFunc(delay, func() {
			b.mu.Lock()
			b.stats.InFlight--
			err := b.deliverLocked(m)
			b.notifyIfIdleLocked()
			b.mu.Unlock()
			_ = err // late delivery failures are counted, not returned
		})
		return nil
	}
	err = b.deliverLocked(m)
	b.notifyIfIdleLocked()
	b.mu.Unlock()
	return err
}

// resolveLocked follows the redirect chain with cycle protection.
func (b *Bus) resolveLocked(dst Address) (Address, error) {
	seen := 0
	for {
		next, ok := b.redirects[dst]
		if !ok {
			return dst, nil
		}
		dst = next
		seen++
		if seen > len(b.redirects) {
			return dst, ErrRedirectCycle
		}
	}
}

func (b *Bus) deliverLocked(m Message) error {
	if b.paused[m.Dst] {
		b.held[m.Dst] = append(b.held[m.Dst], m)
		b.stats.Held++
		return nil
	}
	e, ok := b.endpoints[m.Dst]
	if !ok {
		// Destination vanished while the message was in flight: park it so
		// it can be transferred to a replacement (no silent loss).
		b.held[m.Dst] = append(b.held[m.Dst], m)
		b.stats.Held++
		return nil
	}
	if !e.enqueue(m) {
		return fmt.Errorf("%w: %s", ErrMailboxFull, m.Dst)
	}
	b.stats.Delivered++
	return nil
}

// Pause blocks the communication channel toward addr: subsequent and
// in-flight deliveries are parked in arrival order ("blocking communication
// channels to manage the messages in transit", §1).
func (b *Bus) Pause(addr Address) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.paused[addr] = true
}

// Resume unblocks addr and flushes parked messages in order. It returns the
// number flushed. Messages that no longer fit the mailbox stay parked and
// an ErrMailboxFull is returned alongside the flushed count.
func (b *Bus) Resume(addr Address) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.paused, addr)
	queue := b.held[addr]
	e, ok := b.endpoints[addr]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownDst, addr)
	}
	flushed := 0
	for i, m := range queue {
		if !e.enqueue(m) {
			b.held[addr] = append([]Message(nil), queue[i:]...)
			b.stats.Held -= uint64(flushed)
			b.stats.Delivered += uint64(flushed)
			return flushed, fmt.Errorf("%w: %s", ErrMailboxFull, addr)
		}
		flushed++
	}
	delete(b.held, addr)
	b.stats.Held -= uint64(flushed)
	b.stats.Delivered += uint64(flushed)
	b.notifyIfIdleLocked()
	return flushed, nil
}

// Redirect routes future traffic addressed to old toward new ("redirecting
// the calls to new components", §1). Passing new == "" removes the rule.
func (b *Bus) Redirect(old, new Address) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if new == "" {
		delete(b.redirects, old)
		return nil
	}
	b.redirects[old] = new
	if _, err := b.resolveLocked(old); err != nil {
		delete(b.redirects, old)
		return err
	}
	return nil
}

// TransferHeld moves messages parked for old onto new (rewriting their
// destination), preserving order. Used when a replacement component takes
// over mid-reconfiguration. Returns the number of messages moved.
func (b *Bus) TransferHeld(old, new Address) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	queue := b.held[old]
	if len(queue) == 0 {
		return 0
	}
	for _, m := range queue {
		m.Dst = new
		b.held[new] = append(b.held[new], m)
	}
	delete(b.held, old)
	return len(queue)
}

// HeldCount reports how many messages are parked for addr.
func (b *Bus) HeldCount(addr Address) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.held[addr])
}

// Stats returns a snapshot of the counters.
func (b *Bus) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// InFlight reports messages currently delayed in the network.
func (b *Bus) InFlight() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return int(b.stats.InFlight)
}

// WaitIdle blocks until no message is in flight in the network (parked
// messages do not count: they are safely captured) or ctx is done.
func (b *Bus) WaitIdle(ctx context.Context) error {
	for {
		b.mu.Lock()
		if b.stats.InFlight == 0 {
			b.mu.Unlock()
			return nil
		}
		ch := make(chan struct{})
		b.idleWaiters = append(b.idleWaiters, ch)
		b.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

func (b *Bus) notifyIfIdleLocked() {
	if b.stats.InFlight != 0 {
		return
	}
	for _, ch := range b.idleWaiters {
		close(ch)
	}
	b.idleWaiters = nil
}
