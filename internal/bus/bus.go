// Package bus implements the software bus underlying all component
// communication — the analogue of the Polylith software bus the paper builds
// its reconfiguration sequence on (§1): reaching reconfiguration points,
// "blocking communication channels (to manage the messages in transit)",
// redirecting calls to new components, and accounting for loss, duplication
// and delay so that experiment E4 can verify the channel-preservation
// guarantees.
//
// The bus is split into two planes (DESIGN.md §2):
//
//   - The data plane — Send and delivery — is sharded and lock-free where
//     possible: the routing table is a fixed array of shards, redirect rules
//     and the interceptor chain are atomically-swapped immutable snapshots,
//     counters are atomics, and per-(src,dst) sequence numbers live with the
//     destination's route so FIFO assignment and enqueueing stay atomic.
//     Two sends toward different destinations share no locks.
//   - The control plane — Attach, Detach, Pause, Resume, Redirect,
//     TransferHeld, interceptor (de)installation — serializes on one mutex.
//     Reconfiguration is rare; steady-state traffic must not pay for it.
//
// Pause/hold semantics stay exact because the paused flag and the held
// queue live inside the destination's route and every delivery decision is
// taken under that route's lock: a send either completes before Pause
// acquires the route or parks after it, never in between.
package bus

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
)

// Address identifies an attached endpoint (a component port).
type Address string

// Kind classifies a message.
type Kind int

// Message kinds.
const (
	Request Kind = iota + 1
	Reply
	Event
	Control
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Request:
		return "request"
	case Reply:
		return "reply"
	case Event:
		return "event"
	case Control:
		return "control"
	default:
		return "unknown"
	}
}

// Message is the unit of communication. Payload stays untyped; typed
// contracts are enforced above the bus by connectors and the registry.
type Message struct {
	ID      uint64 // bus-unique, assigned on Send
	Kind    Kind
	Op      string // operation name, e.g. "encode"
	Payload any
	Src     Address
	Dst     Address
	Seq     uint64 // per (Src,Dst) FIFO sequence, assigned on Send
	Corr    uint64 // request/reply correlation
	// SentAt is the send stamp in unix nanoseconds, assigned on Send from
	// the bus clock. One int64 rather than a time.Time (3 words) for the
	// same size-class reason as Deadline — and serving components subtract
	// it from their serve-start read to split queue wait from service time
	// in span records (DESIGN.md §11).
	SentAt int64
	// Trace is the trace id of the call this message belongs to (0 when the
	// call is untraced): minted at the client-handle edge by head sampling,
	// forwarded unchanged by connectors, and carried across peer links in
	// wire v6 frames. Span packs the current span id (high 32 bits) over its
	// parent span id (low 32 bits) — see telemetry.PackSpan. Together with
	// the SentAt shrink these two words keep Message inside the allocation
	// size class documented on Deadline.
	Trace int64
	Span  int64
	// Deadline is the caller's end-to-end deadline in unix nanoseconds (0
	// when none): stamped at the platform edge from the call context,
	// forwarded unchanged by connectors, carried across peer links in the
	// wire call frame, and checked by the serving component so a request
	// whose caller has already given up is answered with an error instead
	// of consuming capacity. Wall-clock (context) semantics, deliberately
	// not the bus clock: deadlines come from contexts and cross process
	// boundaries. 8 bytes rather than a time.Time keeps the Message within
	// the allocation size class the serve path's goroutine spawn relied on.
	Deadline int64
}

// OpCancel is the Op of a Control message asking the destination to abandon
// the request identified by (Src, Corr): the caller gave up (early cancel or
// fallback timeout), so queued or in-service work for that correlation can
// be shed. Control traffic passes pauseRequests barriers and skips the EDF
// lane, so a cancel overtakes the request it revokes.
const OpCancel = "cancel"

// OpStreamCredit is the Op of a Control message extending a stream
// producer's credit window: the consumer identified by (Src, Corr) has
// consumed Payload.(int) items, so the producer may push that many more.
// Control traffic passes pauseRequests barriers and skips the EDF lane, so
// credit keeps flowing to a producer even while its channel is blocked for
// reconfiguration — a paused stream drains instead of deadlocking.
const OpStreamCredit = "stream-credit"

// Verdict is an interceptor's decision about a message.
type Verdict int

// Interceptor verdicts.
const (
	Pass Verdict = iota + 1
	Drop
	Redirected // interceptor rewrote m.Dst
)

// Interceptor sees every message on the bus before routing. Injectors and
// bus-level filters are installed through this hook. Intercept may modify
// the message in place (transform), rewrite its destination (returning
// Redirected) or discard it (Drop).
//
// Interceptors run on the data plane: Intercept is called concurrently from
// every sending goroutine, so implementations must be safe for concurrent
// use (inject.Injector keeps its hit counter atomic, for example).
type Interceptor interface {
	Name() string
	Intercept(m *Message) Verdict
}

// DelayFunc returns the transmission delay from src to dst; the network
// simulator plugs in here. A zero or negative delay delivers synchronously.
// The function is called concurrently from sending goroutines.
type DelayFunc func(src, dst Address) time.Duration

// Bus errors.
var (
	ErrAddressTaken  = errors.New("bus: address already attached")
	ErrUnknownDst    = errors.New("bus: unknown destination")
	ErrClosed        = errors.New("bus: endpoint closed")
	ErrMailboxFull   = errors.New("bus: mailbox full")
	ErrRedirectCycle = errors.New("bus: redirect cycle")
)

// Stats are cumulative bus counters. Conservation invariant when idle:
// Sent == Delivered + Dropped + Held.
type Stats struct {
	Sent      uint64
	Delivered uint64
	Dropped   uint64 // discarded by interceptors
	Held      uint64 // currently parked on paused channels
	InFlight  uint64 // currently delayed in the "network"
	Redirects uint64
}

// busStats is the atomic backing store for Stats.
type busStats struct {
	sent      atomic.Uint64
	delivered atomic.Uint64
	dropped   atomic.Uint64
	held      atomic.Int64
	inFlight  atomic.Int64
	redirects atomic.Uint64
}

// pauseMode selects which message kinds a paused route parks.
type pauseMode uint8

// Pause modes.
const (
	pauseNone pauseMode = iota
	// pauseAll parks every message (the classic blocked channel of §1).
	pauseAll
	// pauseRequests parks only Request messages and lets Reply, Event and
	// Control traffic through. Region-scoped quiescence needs this: a
	// component can only reach its reconfiguration point if the replies its
	// in-flight work is waiting on still arrive while new work is barred.
	pauseRequests
)

// route is the per-address routing entry. Its lock orders everything that
// must be atomic per destination: sequence assignment, the paused check,
// parking on the held queue, and mailbox enqueueing. Routes are created on
// first Attach/Pause and never removed — Detach only clears ep, so messages
// still in flight toward a vanished address park instead of getting lost.
type route struct {
	mu     sync.Mutex
	ep     *Endpoint // nil while detached; shares mu
	paused pauseMode
	held   []Message
	seq    seqTable // per-source FIFO counters; the dst is fixed
}

// parksLocked reports whether a message of kind k parks on this route;
// callers hold r.mu.
func (r *route) parksLocked(k Kind) bool {
	switch r.paused {
	case pauseAll:
		return true
	case pauseRequests:
		return k == Request
	default:
		return false
	}
}

// seqTable is a per-source counter table with a hot-pair cache: most
// destinations see a dominant source, so the common case pays one string
// compare instead of a map round trip. Guarded by the owner's lock.
type seqTable struct {
	m       map[Address]*uint64
	lastSrc Address
	lastRef *uint64
}

func newSeqTable() seqTable { return seqTable{m: map[Address]*uint64{}} }

// cell returns the counter cell for src; callers hold the owner's lock.
func (t *seqTable) cell(src Address) *uint64 {
	if src == t.lastSrc && t.lastRef != nil {
		return t.lastRef
	}
	p := t.m[src]
	if p == nil {
		p = new(uint64)
		t.m[src] = p
	}
	t.lastSrc, t.lastRef = src, p
	return p
}

// Bus routes messages between attached endpoints.
type Bus struct {
	clk     clock.Clock
	delayFn DelayFunc // immutable after New

	// Data plane: copy-on-write snapshots read with a single atomic load.
	// Sending to one destination contends only on that destination's route.
	routes       atomic.Pointer[map[Address]*route]
	redirects    atomic.Pointer[map[Address]Address]
	interceptors atomic.Pointer[[]Interceptor]
	nextID       atomic.Uint64
	stats        busStats

	// fifoOnly disables the per-endpoint EDF deadline lane and the
	// expired-work shedding that rides on it (immutable after New). E19 uses
	// it to measure the seed behaviour against overload governance.
	fifoOnly bool

	// tblMu serializes route-table writers (Attach and the first Pause of a
	// fresh address). Separate from ctl so control-plane operations that
	// already hold ctl can still materialize routes.
	tblMu sync.Mutex

	// Control plane: serializes reconfiguration operations and idle waits.
	ctl         sync.Mutex
	idleWaiters []chan struct{}
}

// Option configures a Bus.
type Option func(*Bus)

// WithClock sets the clock used for delayed delivery timestamps.
func WithClock(c clock.Clock) Option { return func(b *Bus) { b.clk = c } }

// WithDelay installs the transmission-delay model.
func WithDelay(f DelayFunc) Option { return func(b *Bus) { b.delayFn = f } }

// WithFIFOOnly disables deadline-aware mailbox scheduling: every message
// queues on the FIFO ring and nothing is shed as expired. This is the
// pre-governance seed behaviour, kept for comparison runs (E19).
func WithFIFOOnly() Option { return func(b *Bus) { b.fifoOnly = true } }

// New creates an empty bus. Without options it uses the real clock and zero
// transmission delay.
func New(opts ...Option) *Bus {
	b := &Bus{clk: clock.Real{}}
	emptyRoutes := map[Address]*route{}
	b.routes.Store(&emptyRoutes)
	emptyRedirects := map[Address]Address{}
	b.redirects.Store(&emptyRedirects)
	for _, o := range opts {
		o(b)
	}
	return b
}

// route returns the routing entry for addr, or nil if none exists yet.
// Lock-free: one atomic load of the table snapshot.
func (b *Bus) route(addr Address) *route {
	return (*b.routes.Load())[addr]
}

// routeOrCreate returns the routing entry for addr, creating it (via a
// copy-on-write swap of the table) if needed.
func (b *Bus) routeOrCreate(addr Address) *route {
	if r := b.route(addr); r != nil {
		return r
	}
	b.tblMu.Lock()
	defer b.tblMu.Unlock()
	cur := *b.routes.Load()
	if r := cur[addr]; r != nil {
		return r
	}
	next := make(map[Address]*route, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	r := &route{seq: newSeqTable()}
	next[addr] = r
	b.routes.Store(&next)
	return r
}

// Attach registers addr and returns its endpoint. mailbox is the bounded
// queue capacity; values < 1 get the default of 4096.
func (b *Bus) Attach(addr Address, mailbox int) (*Endpoint, error) {
	if mailbox < 1 {
		mailbox = 4096
	}
	r := b.routeOrCreate(addr)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ep != nil {
		return nil, fmt.Errorf("%w: %s", ErrAddressTaken, addr)
	}
	e := newEndpoint(addr, mailbox, &r.mu, &b.stats, b.fifoOnly)
	r.ep = e
	return e, nil
}

// Detach closes and removes the endpoint at addr. Held and in-flight
// messages toward addr are kept until redirected or transferred.
func (b *Bus) Detach(addr Address) {
	r := b.route(addr)
	if r == nil {
		return
	}
	r.mu.Lock()
	e := r.ep
	r.ep = nil
	r.mu.Unlock()
	if e != nil {
		e.close()
	}
}

// AddInterceptor appends an interceptor to the chain (applied in order).
func (b *Bus) AddInterceptor(i Interceptor) {
	b.ctl.Lock()
	defer b.ctl.Unlock()
	var cur []Interceptor
	if p := b.interceptors.Load(); p != nil {
		cur = *p
	}
	next := make([]Interceptor, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = i
	b.interceptors.Store(&next)
}

// RemoveInterceptor removes the named interceptor; it reports success.
func (b *Bus) RemoveInterceptor(name string) bool {
	b.ctl.Lock()
	defer b.ctl.Unlock()
	p := b.interceptors.Load()
	if p == nil {
		return false
	}
	cur := *p
	for i, ic := range cur {
		if ic.Name() == name {
			next := make([]Interceptor, 0, len(cur)-1)
			next = append(next, cur[:i]...)
			next = append(next, cur[i+1:]...)
			b.interceptors.Store(&next)
			return true
		}
	}
	return false
}

// Send routes m toward m.Dst, applying redirects, interceptors and the
// delay model. It never blocks on the receiver: a full mailbox returns
// ErrMailboxFull (backpressure), a paused destination parks the message.
// Send takes no global lock: it reads immutable snapshots of the redirect
// and interceptor tables and serializes only on the destination's route.
func (b *Bus) Send(m Message) error {
	redirects := *b.redirects.Load()
	dst, err := resolveIn(redirects, m.Dst)
	if err != nil {
		return err
	}
	if dst != m.Dst {
		b.stats.redirects.Add(1)
		m.Dst = dst
	}

	if p := b.interceptors.Load(); p != nil && len(*p) > 0 {
		// Separate function: Intercept takes &m, which would otherwise force
		// every Send to heap-allocate the message, interceptors or not.
		return b.sendIntercepted(*p, redirects, m)
	}
	return b.deliver(m)
}

// sendIntercepted runs the interceptor chain, then delivers.
func (b *Bus) sendIntercepted(ics []Interceptor, redirects map[Address]Address, m Message) error {
	var err error
	for _, ic := range ics {
		switch ic.Intercept(&m) {
		case Drop:
			b.stats.dropped.Add(1)
			b.stats.sent.Add(1)
			return nil
		case Redirected:
			if m.Dst, err = resolveIn(redirects, m.Dst); err != nil {
				return err
			}
			b.stats.redirects.Add(1)
		}
	}
	return b.deliver(m)
}

// deliver stamps identity and sequence under the destination's route lock
// and either enqueues, parks, or schedules delayed delivery.
func (b *Bus) deliver(m Message) error {
	r := b.route(m.Dst)
	if r == nil {
		return fmt.Errorf("%w: %s", ErrUnknownDst, m.Dst)
	}

	r.mu.Lock()
	if r.ep == nil && r.paused == pauseNone {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownDst, m.Dst)
	}
	m.ID = b.nextID.Add(1)
	sp := r.seq.cell(m.Src)
	*sp++
	m.Seq = *sp
	m.SentAt = b.clk.Now().UnixNano()
	b.stats.sent.Add(1)

	delay := time.Duration(0)
	if b.delayFn != nil {
		delay = b.delayFn(m.Src, m.Dst)
	}
	if delay > 0 {
		b.stats.inFlight.Add(1)
		r.mu.Unlock()
		b.sendDelayed(r, m, delay)
		return nil
	}
	err := b.deliverRouteLocked(r, &m)
	r.mu.Unlock()
	return err
}

// sendDelayed schedules delivery after the transmission delay. It lives in
// its own function (and must not be inlined) so the closure capture of m
// does not force the zero-delay fast path to heap-allocate the message.
//
//go:noinline
func (b *Bus) sendDelayed(r *route, m Message, delay time.Duration) {
	b.clk.AfterFunc(delay, func() {
		r.mu.Lock()
		err := b.deliverRouteLocked(r, &m)
		r.mu.Unlock()
		if b.stats.inFlight.Add(-1) == 0 {
			b.notifyIdle()
		}
		_ = err // late delivery failures are counted, not returned
	})
}

// resolveIn follows the redirect chain of one snapshot with cycle
// protection. Cycles cannot normally be installed (Redirect validates), so
// the bound only guards against future bugs.
func resolveIn(redirects map[Address]Address, dst Address) (Address, error) {
	if len(redirects) == 0 {
		return dst, nil
	}
	seen := 0
	for {
		next, ok := redirects[dst]
		if !ok {
			return dst, nil
		}
		dst = next
		seen++
		if seen > len(redirects) {
			return dst, ErrRedirectCycle
		}
	}
}

// deliverRouteLocked parks or enqueues m; callers hold r.mu. The pointer
// only avoids copying the message across the internal calls — the message
// is copied into the held queue or the mailbox ring, never retained.
func (b *Bus) deliverRouteLocked(r *route, m *Message) error {
	if r.parksLocked(m.Kind) || r.ep == nil {
		// Paused channel, or the destination vanished while the message was
		// in flight: park it so it can be transferred to a replacement (no
		// silent loss).
		r.held = append(r.held, *m)
		b.stats.held.Add(1)
		return nil
	}
	if !r.ep.enqueueLocked(m) {
		return fmt.Errorf("%w: %s", ErrMailboxFull, m.Dst)
	}
	b.stats.delivered.Add(1)
	return nil
}

// Pause blocks the communication channel toward addr: subsequent and
// in-flight deliveries are parked in arrival order ("blocking communication
// channels to manage the messages in transit", §1).
func (b *Bus) Pause(addr Address) {
	b.pauseMode(addr, pauseAll)
}

// PauseRequests blocks only Request traffic toward addr; replies, events and
// control messages keep flowing. This is the admission barrier used by
// region-scoped reconfiguration: new work toward the region parks while the
// region's in-flight work drains through its pending replies.
func (b *Bus) PauseRequests(addr Address) {
	b.pauseMode(addr, pauseRequests)
}

func (b *Bus) pauseMode(addr Address, mode pauseMode) {
	b.ctl.Lock()
	defer b.ctl.Unlock()
	r := b.routeOrCreate(addr)
	r.mu.Lock()
	r.paused = mode
	r.mu.Unlock()
}

// Resume unblocks addr and flushes parked messages in order. It returns the
// number flushed. Requests whose deadline lapsed while the channel was
// paused are discarded instead of re-delivered — the caller already gave up
// — and move from the held count to the dropped count, preserving
// Sent == Delivered + Dropped + Held. Messages that no longer fit the
// mailbox stay parked and an ErrMailboxFull is returned alongside the
// flushed count.
func (b *Bus) Resume(addr Address) (int, error) {
	b.ctl.Lock()
	defer b.ctl.Unlock()
	r := b.routeOrCreate(addr)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.paused = pauseNone
	if r.ep == nil {
		return 0, fmt.Errorf("%w: %s", ErrUnknownDst, addr)
	}
	var now int64
	if !b.fifoOnly {
		for i := range r.held {
			if m := &r.held[i]; m.Kind == Request && m.Deadline != 0 {
				now = time.Now().UnixNano()
				break
			}
		}
	}
	flushed, shed := 0, 0
	account := func() {
		b.stats.held.Add(-int64(flushed + shed))
		b.stats.delivered.Add(uint64(flushed))
		b.stats.dropped.Add(uint64(shed))
	}
	for i := range r.held {
		m := &r.held[i]
		if now != 0 && m.Kind == Request && m.Deadline != 0 && m.Deadline <= now {
			r.ep.noteExpiredLocked(m)
			shed++
			continue
		}
		if !r.ep.enqueueLocked(m) {
			r.held = append([]Message(nil), r.held[i:]...)
			account()
			return flushed, fmt.Errorf("%w: %s", ErrMailboxFull, addr)
		}
		flushed++
	}
	r.held = nil
	account()
	return flushed, nil
}

// Redirect routes future traffic addressed to old toward new ("redirecting
// the calls to new components", §1). Passing new == "" removes the rule.
// The rule table is copy-on-write: in-progress sends finish against the
// snapshot they started with; later sends see the new rule.
func (b *Bus) Redirect(old, new Address) error {
	b.ctl.Lock()
	defer b.ctl.Unlock()
	cur := *b.redirects.Load()
	next := make(map[Address]Address, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	if new == "" {
		delete(next, old)
	} else {
		next[old] = new
		if _, err := resolveIn(next, old); err != nil {
			return err
		}
	}
	b.redirects.Store(&next)
	return nil
}

// TransferHeld moves messages parked for old onto new (rewriting their
// destination), preserving order. Used when a replacement component takes
// over mid-reconfiguration. Returns the number of messages moved.
func (b *Bus) TransferHeld(old, new Address) int {
	b.ctl.Lock()
	defer b.ctl.Unlock()
	ro := b.route(old)
	if ro == nil {
		return 0
	}
	ro.mu.Lock()
	queue := ro.held
	ro.held = nil
	ro.mu.Unlock()
	if len(queue) == 0 {
		return 0
	}
	for i := range queue {
		queue[i].Dst = new
	}
	rn := b.routeOrCreate(new)
	rn.mu.Lock()
	rn.held = append(rn.held, queue...)
	rn.mu.Unlock()
	return len(queue)
}

// HeldCount reports how many messages are parked for addr.
func (b *Bus) HeldCount(addr Address) int {
	r := b.route(addr)
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.held)
}

// Stats returns a snapshot of the counters. Each counter is individually
// atomic but the snapshot is not taken under a lock, so the conservation
// invariant Sent == Delivered + Dropped + Held is only guaranteed when the
// bus is quiescent; a concurrent reader can observe a send that has been
// counted but not yet delivered.
func (b *Bus) Stats() Stats {
	return Stats{
		Sent:      b.stats.sent.Load(),
		Delivered: b.stats.delivered.Load(),
		Dropped:   b.stats.dropped.Load(),
		Held:      uint64(b.stats.held.Load()),
		InFlight:  uint64(b.stats.inFlight.Load()),
		Redirects: b.stats.redirects.Load(),
	}
}

// InFlight reports messages currently delayed in the network.
func (b *Bus) InFlight() int {
	return int(b.stats.inFlight.Load())
}

// WaitIdle blocks until no message is in flight in the network (parked
// messages do not count: they are safely captured) or ctx is done.
func (b *Bus) WaitIdle(ctx context.Context) error {
	for {
		b.ctl.Lock()
		if b.stats.inFlight.Load() == 0 {
			b.ctl.Unlock()
			return nil
		}
		ch := make(chan struct{})
		b.idleWaiters = append(b.idleWaiters, ch)
		b.ctl.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// notifyIdle wakes WaitIdle callers after the in-flight count hits zero.
func (b *Bus) notifyIdle() {
	b.ctl.Lock()
	waiters := b.idleWaiters
	b.idleWaiters = nil
	b.ctl.Unlock()
	for _, ch := range waiters {
		close(ch)
	}
}
