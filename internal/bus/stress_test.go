package bus

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// atomicDropper is a race-safe interceptor dropping every 16th scoped
// message; interceptors run on the data plane, so test doubles must be
// concurrency-safe like the production injectors.
type atomicDropper struct{ n atomic.Uint64 }

func (d *atomicDropper) Name() string { return "stress-dropper" }
func (d *atomicDropper) Intercept(m *Message) Verdict {
	if d.n.Add(1)%16 == 0 {
		return Drop
	}
	return Pass
}

// TestConcurrentReconfigurationStress hammers the data plane (Send) while
// the control plane continuously reconfigures (Pause / Resume / Redirect /
// Attach / Detach / TransferHeld / interceptor churn), then asserts the
// conservation invariant Sent == Delivered + Dropped + Held once idle.
// Run with -race: this is the lock-discipline proof for the control/data
// plane split.
func TestConcurrentReconfigurationStress(t *testing.T) {
	b := New()
	const (
		nAddrs    = 6
		nSenders  = 4
		perSender = 8000
		nCtl      = 2
		ctlOps    = 2000
		mailbox   = 1 << 16
	)
	addrs := make([]Address, nAddrs)
	aliases := make([]Address, nAddrs)
	for i := range addrs {
		addrs[i] = Address(fmt.Sprintf("comp-%d", i))
		aliases[i] = Address(fmt.Sprintf("alias-%d", i))
		if _, err := b.Attach(addrs[i], mailbox); err != nil {
			t.Fatal(err)
		}
	}
	b.AddInterceptor(&atomicDropper{})

	var wg sync.WaitGroup
	for s := 0; s < nSenders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			src := Address(fmt.Sprintf("sender-%d", s))
			now := time.Now().UnixNano()
			for i := 0; i < perSender; i++ {
				dst := addrs[(s+i)%nAddrs]
				if i%7 == 0 {
					// Through an alias: either redirected toward a live
					// component or rejected as unknown — both legal.
					dst = aliases[(s+i)%nAddrs]
				}
				// ErrUnknownDst (detached or unbound alias) and
				// ErrMailboxFull are legitimate outcomes mid-reconfiguration;
				// the invariant only covers accepted sends.
				m := Message{Kind: Event, Op: "op", Payload: i, Src: src, Dst: dst}
				if i%3 == 1 {
					// Deadlined request traffic: some deadlines already
					// passed, some a few ms out — the Resume churn must shed
					// the expired ones into drop accounting (held → dropped)
					// without breaking conservation.
					m.Kind = Request
					m.Deadline = now + int64(i%5-2)*int64(time.Millisecond)
				}
				_ = b.Send(m)
			}
		}(s)
	}
	for c := 0; c < nCtl; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + c)))
			for i := 0; i < ctlOps; i++ {
				k := rng.Intn(nAddrs)
				j := rng.Intn(nAddrs)
				switch rng.Intn(8) {
				case 0:
					b.Pause(addrs[k])
				case 1:
					_, _ = b.Resume(addrs[k])
				case 2:
					_ = b.Redirect(aliases[k], addrs[j])
				case 3:
					_ = b.Redirect(aliases[k], "")
				case 4:
					b.Detach(addrs[k])
					_, _ = b.Attach(addrs[k], mailbox)
				case 5:
					b.TransferHeld(addrs[k], addrs[j])
				case 6:
					b.AddInterceptor(&atomicDropper{})
					b.RemoveInterceptor("stress-dropper")
				case 7:
					_ = b.HeldCount(addrs[k])
					_ = b.Stats()
				}
			}
		}(c)
	}
	wg.Wait()

	// Quiesce: make sure every component address is attached and unpaused,
	// flushing whatever the chaos left parked.
	for _, a := range addrs {
		_, _ = b.Attach(a, mailbox)
		if _, err := b.Resume(a); err != nil {
			t.Fatalf("final resume %s: %v", a, err)
		}
	}
	st := b.Stats()
	if st.Held != 0 {
		t.Fatalf("messages still parked after final resume: %d", st.Held)
	}
	if st.Sent != st.Delivered+st.Dropped+st.Held {
		t.Fatalf("conservation violated: sent=%d delivered=%d dropped=%d held=%d",
			st.Sent, st.Delivered, st.Dropped, st.Held)
	}
}

// TestParallelFIFOAcrossPauseResume checks that per-source FIFO order (and
// the no-loss guarantee) survives concurrent senders racing pause/resume
// cycles on the same destination.
func TestParallelFIFOAcrossPauseResume(t *testing.T) {
	b := New()
	dst, err := b.Attach("dst", 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	const senders, per = 8, 2000
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			src := Address(fmt.Sprintf("s%d", s))
			for i := 0; i < per; i++ {
				if err := b.Send(Message{Kind: Event, Op: "e", Payload: i, Src: src, Dst: "dst"}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(s)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			b.Pause("dst")
			if _, err := b.Resume("dst"); err != nil {
				t.Errorf("resume: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if _, err := b.Resume("dst"); err != nil {
		t.Fatal(err)
	}
	if got := dst.Received(); got != senders*per {
		t.Fatalf("received %d, want %d", got, senders*per)
	}
	dups, reorders := dst.Anomalies()
	if dups != 0 || reorders != 0 {
		t.Fatalf("anomalies under concurrency: dups=%d reorders=%d", dups, reorders)
	}
}
