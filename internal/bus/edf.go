package bus

// The EDF lane (DESIGN.md §9): deadline-carrying requests queue on a
// bounded binary min-heap keyed on Message.Deadline instead of the FIFO
// ring, so the mailbox serves earliest-deadline-first and can lazily shed
// work whose deadline already lapsed. Deadline-less traffic (and every
// Reply/Event/Control message) keeps the ring, so the PR 1 zero-alloc FIFO
// path is untouched.
//
// This file is pure heap mechanics on int64 nanosecond deadlines — it must
// not import time (CI greps for time.Time construction on the message hot
// path; the PR 5 size-class lesson).

// edfLess orders the deadline lane: earliest absolute deadline first, with
// the bus-unique delivery ID as tie-break so equal deadlines keep arrival
// order.
func edfLess(a, b *Message) bool {
	if a.Deadline != b.Deadline {
		return a.Deadline < b.Deadline
	}
	return a.ID < b.ID
}

// edfPush appends m and sifts it up; it returns the (possibly regrown)
// heap. The backing array is reused across drain/fill cycles, so a mailbox
// oscillating around a steady depth allocates nothing.
func edfPush(h []Message, m *Message) []Message {
	h = append(h, *m)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !edfLess(&h[i], &h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

// edfPop removes and returns the earliest-deadline message. The vacated
// slot is zeroed so the heap does not retain payload references. Callers
// check len(h) > 0.
func edfPop(h []Message) (Message, []Message) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = Message{}
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h) && edfLess(&h[l], &h[smallest]) {
			smallest = l
		}
		if r < len(h) && edfLess(&h[r], &h[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return top, h
}
