package bus

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/clock"
)

var origin = time.Date(2003, 5, 19, 0, 0, 0, 0, time.UTC)

func attach(t *testing.T, b *Bus, addr Address) *Endpoint {
	t.Helper()
	e, err := b.Attach(addr, 0)
	if err != nil {
		t.Fatalf("attach %s: %v", addr, err)
	}
	return e
}

func TestSendDeliver(t *testing.T) {
	b := New()
	dst := attach(t, b, "dst")
	if err := b.Send(Message{Kind: Event, Op: "ping", Src: "src", Dst: "dst"}); err != nil {
		t.Fatalf("send: %v", err)
	}
	m, err := dst.Receive(context.Background())
	if err != nil {
		t.Fatalf("receive: %v", err)
	}
	if m.Op != "ping" || m.ID == 0 || m.Seq != 1 {
		t.Fatalf("got %+v", m)
	}
}

func TestUnknownDestination(t *testing.T) {
	b := New()
	err := b.Send(Message{Dst: "nowhere"})
	if !errors.Is(err, ErrUnknownDst) {
		t.Fatalf("err = %v, want ErrUnknownDst", err)
	}
}

func TestDuplicateAttach(t *testing.T) {
	b := New()
	attach(t, b, "a")
	if _, err := b.Attach("a", 0); !errors.Is(err, ErrAddressTaken) {
		t.Fatalf("err = %v, want ErrAddressTaken", err)
	}
}

func TestFIFOPerPair(t *testing.T) {
	b := New()
	dst := attach(t, b, "dst")
	for i := 0; i < 100; i++ {
		if err := b.Send(Message{Kind: Event, Op: "e", Payload: i, Src: "s", Dst: "dst"}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	for i := 0; i < 100; i++ {
		m, _ := dst.Receive(context.Background())
		if m.Payload.(int) != i {
			t.Fatalf("out of order: got %v at %d", m.Payload, i)
		}
	}
	dups, reorders := dst.Anomalies()
	if dups != 0 || reorders != 0 {
		t.Fatalf("anomalies dups=%d reorders=%d", dups, reorders)
	}
}

func TestPauseHoldsAndResumeFlushesInOrder(t *testing.T) {
	b := New()
	dst := attach(t, b, "dst")
	b.Pause("dst")
	for i := 0; i < 10; i++ {
		if err := b.Send(Message{Kind: Event, Payload: i, Src: "s", Dst: "dst"}); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	if dst.Len() != 0 {
		t.Fatalf("paused endpoint received %d messages", dst.Len())
	}
	if got := b.HeldCount("dst"); got != 10 {
		t.Fatalf("held = %d, want 10", got)
	}
	n, err := b.Resume("dst")
	if err != nil || n != 10 {
		t.Fatalf("resume = %d, %v", n, err)
	}
	for i := 0; i < 10; i++ {
		m, _ := dst.Receive(context.Background())
		if m.Payload.(int) != i {
			t.Fatalf("flush out of order at %d: %v", i, m.Payload)
		}
	}
}

func TestRedirect(t *testing.T) {
	b := New()
	attach(t, b, "old")
	newEp := attach(t, b, "new")
	if err := b.Redirect("old", "new"); err != nil {
		t.Fatalf("redirect: %v", err)
	}
	if err := b.Send(Message{Kind: Request, Op: "q", Src: "c", Dst: "old"}); err != nil {
		t.Fatalf("send: %v", err)
	}
	m, _ := newEp.Receive(context.Background())
	if m.Dst != "new" {
		t.Fatalf("dst = %s, want new", m.Dst)
	}
	if b.Stats().Redirects != 1 {
		t.Fatalf("redirects = %d, want 1", b.Stats().Redirects)
	}
	// Removing the rule restores direct routing.
	if err := b.Redirect("old", ""); err != nil {
		t.Fatalf("clear redirect: %v", err)
	}
	if err := b.Send(Message{Dst: "old", Src: "c"}); err != nil {
		t.Fatalf("send to old after clear: %v", err)
	}
}

func TestRedirectCycleRejected(t *testing.T) {
	b := New()
	attach(t, b, "a")
	attach(t, b, "b")
	if err := b.Redirect("a", "b"); err != nil {
		t.Fatalf("redirect a->b: %v", err)
	}
	if err := b.Redirect("b", "a"); !errors.Is(err, ErrRedirectCycle) {
		t.Fatalf("err = %v, want ErrRedirectCycle", err)
	}
}

func TestTransferHeld(t *testing.T) {
	b := New()
	attach(t, b, "old")
	newEp := attach(t, b, "new")
	b.Pause("old")
	for i := 0; i < 5; i++ {
		_ = b.Send(Message{Kind: Event, Payload: i, Src: "s", Dst: "old"})
	}
	if n := b.TransferHeld("old", "new"); n != 5 {
		t.Fatalf("transferred = %d, want 5", n)
	}
	if _, err := b.Resume("new"); err != nil {
		t.Fatalf("resume new: %v", err)
	}
	for i := 0; i < 5; i++ {
		m, _ := newEp.Receive(context.Background())
		if m.Payload.(int) != i || m.Dst != "new" {
			t.Fatalf("transfer order/dst wrong: %+v", m)
		}
	}
}

func TestDetachParksInsteadOfLosing(t *testing.T) {
	b := New()
	attach(t, b, "gone")
	b.Pause("gone") // simulate reconfiguration: block, then detach
	b.Detach("gone")
	if err := b.Send(Message{Kind: Event, Src: "s", Dst: "gone"}); err != nil {
		t.Fatalf("send to paused+detached: %v", err)
	}
	if got := b.HeldCount("gone"); got != 1 {
		t.Fatalf("held = %d, want 1 (no silent loss)", got)
	}
}

type dropEven struct{ n int }

func (d *dropEven) Name() string { return "dropEven" }
func (d *dropEven) Intercept(m *Message) Verdict {
	d.n++
	if d.n%2 == 0 {
		return Drop
	}
	return Pass
}

func TestInterceptorDrop(t *testing.T) {
	b := New()
	dst := attach(t, b, "dst")
	b.AddInterceptor(&dropEven{})
	for i := 0; i < 10; i++ {
		_ = b.Send(Message{Kind: Event, Src: "s", Dst: "dst"})
	}
	st := b.Stats()
	if st.Dropped != 5 || dst.Received() != 5 {
		t.Fatalf("dropped=%d received=%d, want 5/5", st.Dropped, dst.Received())
	}
	if !b.RemoveInterceptor("dropEven") {
		t.Fatal("remove failed")
	}
	if b.RemoveInterceptor("dropEven") {
		t.Fatal("double remove succeeded")
	}
}

type rerouter struct{ to Address }

func (r rerouter) Name() string { return "reroute" }
func (r rerouter) Intercept(m *Message) Verdict {
	m.Dst = r.to
	return Redirected
}

func TestInterceptorRedirect(t *testing.T) {
	b := New()
	attach(t, b, "a")
	bEp := attach(t, b, "b")
	b.AddInterceptor(rerouter{to: "b"})
	_ = b.Send(Message{Kind: Event, Src: "s", Dst: "a"})
	if bEp.Received() != 1 {
		t.Fatalf("b received %d, want 1", bEp.Received())
	}
}

func TestDelayedDeliveryWithSimClock(t *testing.T) {
	sim := clock.NewSim(origin)
	b := New(WithClock(sim), WithDelay(func(src, dst Address) time.Duration {
		return 10 * time.Millisecond
	}))
	dst := attach(t, b, "dst")
	_ = b.Send(Message{Kind: Event, Src: "s", Dst: "dst"})
	if b.InFlight() != 1 {
		t.Fatalf("in flight = %d, want 1", b.InFlight())
	}
	if dst.Len() != 0 {
		t.Fatal("delivered before delay elapsed")
	}
	sim.Advance(10 * time.Millisecond)
	if dst.Len() != 1 || b.InFlight() != 0 {
		t.Fatalf("len=%d inflight=%d, want 1/0", dst.Len(), b.InFlight())
	}
}

func TestWaitIdle(t *testing.T) {
	sim := clock.NewSim(origin)
	b := New(WithClock(sim), WithDelay(func(_, _ Address) time.Duration { return time.Second }))
	attach(t, b, "dst")
	for i := 0; i < 50; i++ {
		_ = b.Send(Message{Kind: Event, Src: "s", Dst: "dst"})
	}
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- b.WaitIdle(ctx)
	}()
	// Give the waiter a moment to park, then advance simulated time.
	time.Sleep(10 * time.Millisecond)
	sim.Advance(time.Second)
	if err := <-done; err != nil {
		t.Fatalf("WaitIdle: %v", err)
	}
}

func TestWaitIdleContextCancel(t *testing.T) {
	sim := clock.NewSim(origin)
	b := New(WithClock(sim), WithDelay(func(_, _ Address) time.Duration { return time.Hour }))
	attach(t, b, "dst")
	_ = b.Send(Message{Kind: Event, Src: "s", Dst: "dst"})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := b.WaitIdle(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
}

func TestMailboxFull(t *testing.T) {
	b := New()
	if _, err := b.Attach("tiny", 2); err != nil {
		t.Fatal(err)
	}
	_ = b.Send(Message{Kind: Event, Src: "s", Dst: "tiny"})
	_ = b.Send(Message{Kind: Event, Src: "s", Dst: "tiny"})
	err := b.Send(Message{Kind: Event, Src: "s", Dst: "tiny"})
	if !errors.Is(err, ErrMailboxFull) {
		t.Fatalf("err = %v, want ErrMailboxFull", err)
	}
}

func TestReceiveContextCancel(t *testing.T) {
	b := New()
	dst := attach(t, b, "dst")
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	if _, err := dst.Receive(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
}

func TestDetachWakesReceivers(t *testing.T) {
	b := New()
	dst := attach(t, b, "dst")
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = dst.Receive(context.Background())
		}(i)
	}
	time.Sleep(5 * time.Millisecond)
	b.Detach("dst")
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("receiver %d err = %v, want ErrClosed", i, err)
		}
	}
}

func TestConservationInvariant(t *testing.T) {
	// Property: when the bus is idle, Sent == Delivered + Dropped + Held.
	f := func(ops []uint8) bool {
		b := New()
		ep, _ := b.Attach("a", 1<<16)
		_ = ep
		if _, err := b.Attach("b", 1<<16); err != nil {
			return false
		}
		b.AddInterceptor(&dropEven{})
		paused := false
		for _, op := range ops {
			switch op % 4 {
			case 0:
				_ = b.Send(Message{Kind: Event, Src: "x", Dst: "a"})
			case 1:
				_ = b.Send(Message{Kind: Event, Src: "x", Dst: "b"})
			case 2:
				if !paused {
					b.Pause("a")
					paused = true
				}
			case 3:
				if paused {
					_, _ = b.Resume("a")
					paused = false
				}
			}
		}
		st := b.Stats()
		return st.Sent == st.Delivered+st.Dropped+st.Held
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNoLossNoDupAcrossPauseResumeCycles(t *testing.T) {
	// E4 core invariant at the bus level: unique payloads sent across many
	// pause/resume cycles are all received exactly once, in order.
	b := New()
	dst, _ := b.Attach("dst", 1<<15)
	const total = 5000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			if i%97 == 0 {
				b.Pause("dst")
			}
			if err := b.Send(Message{Kind: Event, Payload: i, Src: "s", Dst: "dst"}); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
			if i%97 == 53 {
				_, _ = b.Resume("dst")
			}
		}
		_, _ = b.Resume("dst")
	}()
	wg.Wait()
	seen := make(map[int]bool, total)
	for len(seen) < total {
		m, ok := dst.TryReceive()
		if !ok {
			t.Fatalf("ran dry after %d messages", len(seen))
		}
		v := m.Payload.(int)
		if seen[v] {
			t.Fatalf("duplicate payload %d", v)
		}
		seen[v] = true
	}
	dups, reorders := dst.Anomalies()
	if dups != 0 || reorders != 0 {
		t.Fatalf("anomalies dups=%d reorders=%d", dups, reorders)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Request: "request", Reply: "reply", Event: "event", Control: "control", Kind(99): "unknown"} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestConcurrentSendersManyReceivers(t *testing.T) {
	b := New()
	dst, _ := b.Attach("dst", 1<<15)
	const senders, per = 8, 500
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := b.Send(Message{Kind: Event, Src: Address(fmt.Sprintf("s%d", s)), Dst: "dst", Payload: i}); err != nil {
					t.Errorf("send: %v", err)
				}
			}
		}(s)
	}
	wg.Wait()
	if got := dst.Received(); got != senders*per {
		t.Fatalf("received %d, want %d", got, senders*per)
	}
	dups, reorders := dst.Anomalies()
	if dups != 0 || reorders != 0 {
		t.Fatalf("anomalies under concurrency: dups=%d reorders=%d", dups, reorders)
	}
}
