package bus

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestEDFOrderingWithinMailbox: deadlined requests dequeue earliest-deadline
// first regardless of arrival order, and deadline-less traffic keeps its
// FIFO ring (served after the deadline lane drains — work nobody is waiting
// on yields to work on a clock).
func TestEDFOrderingWithinMailbox(t *testing.T) {
	b := New()
	dst := attach(t, b, "dst")
	base := time.Now().Add(time.Hour).UnixNano()
	for i := 0; i < 3; i++ {
		if err := b.Send(Message{Kind: Request, Op: "r", Payload: 100 + i, Src: "s", Dst: "dst"}); err != nil {
			t.Fatal(err)
		}
	}
	// Deadlines arrive in reverse order.
	for i := 10; i >= 1; i-- {
		if err := b.Send(Message{Kind: Request, Op: "r", Payload: i, Src: "s", Dst: "dst",
			Deadline: base + int64(i)*int64(time.Second)}); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	for i := 1; i <= 10; i++ {
		m, err := dst.Receive(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if m.Payload.(int) != i {
			t.Fatalf("EDF order broken: got %v at position %d", m.Payload, i)
		}
	}
	for i := 0; i < 3; i++ {
		m, err := dst.Receive(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if m.Payload.(int) != 100+i {
			t.Fatalf("FIFO tail broken: got %v at position %d", m.Payload, i)
		}
	}
}

// TestEDFRepliesNeverStarve: replies and control messages bypass the
// deadline lane entirely — a full lane of urgent requests cannot delay the
// completion of work already done.
func TestEDFRepliesNeverStarve(t *testing.T) {
	b := New()
	dst := attach(t, b, "dst")
	dl := time.Now().Add(time.Hour).UnixNano()
	for i := 0; i < 5; i++ {
		if err := b.Send(Message{Kind: Request, Op: "r", Payload: i, Src: "s", Dst: "dst", Deadline: dl}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Send(Message{Kind: Reply, Op: "r", Payload: "done", Src: "s", Dst: "dst"}); err != nil {
		t.Fatal(err)
	}
	m, err := dst.Receive(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != Reply {
		t.Fatalf("reply queued behind the deadline lane: got %v first", m.Kind)
	}
}

// TestEDFExpiredShedOnDequeue: an expired request is discarded at dequeue —
// never delivered — and reclassified from delivered to dropped so the
// conservation invariant holds.
func TestEDFExpiredShedOnDequeue(t *testing.T) {
	b := New()
	dst := attach(t, b, "dst")
	if err := b.Send(Message{Kind: Request, Op: "r", Payload: "dead", Src: "s", Dst: "dst",
		Deadline: time.Now().Add(-time.Second).UnixNano()}); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(Message{Kind: Request, Op: "r", Payload: "live", Src: "s", Dst: "dst",
		Deadline: time.Now().Add(time.Hour).UnixNano()}); err != nil {
		t.Fatal(err)
	}
	m, ok := dst.TryReceive()
	if !ok || m.Payload.(string) != "live" {
		t.Fatalf("got %v %v, want the live request", m.Payload, ok)
	}
	if _, ok := dst.TryReceive(); ok {
		t.Fatal("expired request was delivered")
	}
	if got := dst.Expired(); got != 1 {
		t.Fatalf("endpoint expired count = %d, want 1", got)
	}
	st := b.Stats()
	if st.Dropped != 1 || st.Sent != st.Delivered+st.Dropped+st.Held {
		t.Fatalf("accounting after shed: sent=%d delivered=%d dropped=%d held=%d",
			st.Sent, st.Delivered, st.Dropped, st.Held)
	}
}

// TestResumeShedsExpiredHeld: requests whose deadline passed while parked on
// a paused route are discarded during the flush-after-resume, moved from
// held to dropped; live and deadline-less traffic still flushes in order.
func TestResumeShedsExpiredHeld(t *testing.T) {
	b := New()
	dst := attach(t, b, "dst")
	b.Pause("dst")
	if err := b.Send(Message{Kind: Request, Op: "r", Payload: "doomed", Src: "s", Dst: "dst",
		Deadline: time.Now().Add(20 * time.Millisecond).UnixNano()}); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(Message{Kind: Request, Op: "r", Payload: "live", Src: "s", Dst: "dst",
		Deadline: time.Now().Add(time.Hour).UnixNano()}); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(Message{Kind: Event, Op: "e", Payload: "plain", Src: "s", Dst: "dst"}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // the first request is now expired
	n, err := b.Resume("dst")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("flushed %d, want 2 (expired one shed)", n)
	}
	if got := dst.Expired(); got != 1 {
		t.Fatalf("endpoint expired count = %d, want 1", got)
	}
	// The event outranks the deadline lane (non-request ring head first),
	// then the surviving deadlined request drains.
	for _, want := range []string{"plain", "live"} {
		m, ok := dst.TryReceive()
		if !ok || m.Payload.(string) != want {
			t.Fatalf("got %v %v, want %q", m.Payload, ok, want)
		}
	}
	st := b.Stats()
	if st.Dropped != 1 || st.Held != 0 || st.Sent != st.Delivered+st.Dropped+st.Held {
		t.Fatalf("accounting after resume shed: sent=%d delivered=%d dropped=%d held=%d",
			st.Sent, st.Delivered, st.Dropped, st.Held)
	}
}

// TestEDFOrderingUnderPauseResumeRace: concurrent senders race pause/resume
// churn on one destination; once everything settles the deadline lane must
// still drain in non-decreasing deadline order with nothing lost. Run with
// -race: held-queue flushes re-enter the EDF heap under the route lock.
func TestEDFOrderingUnderPauseResumeRace(t *testing.T) {
	b := New()
	dst, err := b.Attach("dst", 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	const senders, per = 4, 500
	base := time.Now().Add(time.Hour).UnixNano()
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			src := Address(rune('a' + s))
			for i := 0; i < per; i++ {
				// Deadlines deliberately interleave across senders.
				dl := base + int64(i*senders+s)*int64(time.Millisecond)
				if err := b.Send(Message{Kind: Request, Op: "r", Src: src, Dst: "dst", Deadline: dl}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(s)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			b.PauseRequests("dst")
			if _, err := b.Resume("dst"); err != nil {
				t.Errorf("resume: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if _, err := b.Resume("dst"); err != nil {
		t.Fatal(err)
	}
	var last int64
	for i := 0; i < senders*per; i++ {
		m, ok := dst.TryReceive()
		if !ok {
			t.Fatalf("ran dry after %d of %d", i, senders*per)
		}
		if m.Deadline < last {
			t.Fatalf("EDF order violated at %d: %d after %d", i, m.Deadline, last)
		}
		last = m.Deadline
	}
	if _, ok := dst.TryReceive(); ok {
		t.Fatal("extra message delivered")
	}
}
