// Command quickstart is the paper's Figure 1 running live: two serving
// components bound through a connector, a RAML observing the system through
// introspection streams, and an intercession action (an online hot swap
// with state transfer) applied while the system keeps serving.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"sync"

	aas "repro"
)

// wordStore is the serving component: a stateful dictionary.
type wordStore struct {
	mu    sync.Mutex
	Words map[string]string
	Ver   string
}

func newWordStore(ver string) *wordStore {
	return &wordStore{Words: map[string]string{}, Ver: ver}
}

func (w *wordStore) Handle(op string, args []any) ([]any, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	switch op {
	case "define":
		w.Words[args[0].(string)] = args[1].(string)
		return []any{"ok"}, nil
	case "lookup":
		def, ok := w.Words[args[0].(string)]
		if !ok {
			return nil, fmt.Errorf("no definition for %q", args[0])
		}
		return []any{def, w.Ver}, nil
	default:
		return nil, fmt.Errorf("unknown op %s", op)
	}
}

func (w *wordStore) Snapshot() ([]byte, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return json.Marshal(w.Words)
}

func (w *wordStore) Restore(b []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return json.Unmarshal(b, &w.Words)
}

// client is the other serving component of Figure 1; it consumes the
// store's lookup service through the connector.
type client struct{ caller aas.Caller }

func (c *client) SetCaller(k aas.Caller) { c.caller = k }

func (c *client) Handle(op string, args []any) ([]any, error) {
	if op != "ask" {
		return nil, fmt.Errorf("unknown op %s", op)
	}
	return c.caller.Call("lookup", args...)
}

const config = `
system Figure1 {
  component Client {
    provide ask(word) -> (definition)
    require lookup(word) -> (definition)
  }
  component Dictionary {
    provide define(word, text) -> (status)
    provide lookup(word) -> (definition)
    property statefulness = "stateful"
  }
  connector Glue {
    kind rpc
  }
  bind Client.lookup -> Dictionary.lookup via Glue
}
`

func main() {
	reg := aas.NewRegistry()
	reg.MustRegister("Dictionary", "1.0", nil, func() any { return newWordStore("v1.0") })
	reg.MustRegister("Dictionary2", "2.0", nil, func() any { return newWordStore("v2.0") })
	reg.MustRegister("Client", "1.0", nil, func() any { return &client{} })

	sys, err := aas.Load(config, aas.Options{Registry: reg.Registry})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()

	// RAML stream: print everything the meta-level observes.
	events, cancel := sys.Events().Subscribe(256)
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for e := range events {
			fmt.Printf("  [raml] %-20s %-12s %s\n", e.Kind, e.Component, e.Detail)
		}
	}()

	// Compiled client-binding handles: resolved once, reused for every call,
	// and kept valid across the hot swap below.
	dict := sys.Client("Dictionary")
	client := sys.Client("Client")

	fmt.Println("== populate and query through the connector ==")
	mustCall(dict, "define", "aas", "auto-adaptive system")
	res := mustCall(client, "ask", "aas")
	fmt.Printf("Client.ask(aas) = %q (impl %s)\n", res[0], res[1])

	fmt.Println("== hot swap with strong state transfer (intercession) ==")
	entry, err := reg.Lookup("Dictionary2")
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sys.SwapImplementation("Dictionary", entry, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("swap done: blackout=%v heldMessages=%d stateBytes=%d\n",
		rep.Blackout, rep.HeldMessages, rep.StateBytes)

	res = mustCall(client, "ask", "aas")
	fmt.Printf("Client.ask(aas) = %q (impl %s) — state preserved, implementation changed\n",
		res[0], res[1])

	fmt.Println("== introspection snapshot ==")
	m := sys.Introspect()
	for _, c := range m.Components {
		fmt.Printf("component %-12s lifecycle=%-8s calls=%d\n", c.Name, c.Lifecycle, c.Calls)
	}
	for _, c := range m.Connectors {
		fmt.Printf("connector %-20s kind=%-6s mediated=%d\n", c.Name, c.Kind, c.Stats.Mediated)
	}
	cancel()
	<-done
}

func mustCall(cl *aas.Client, op string, args ...any) []any {
	res, err := cl.Call(context.Background(), op, args...)
	if err != nil {
		log.Fatalf("%s.%s: %v", cl.Component(), op, err)
	}
	return res
}
