// Command failover demonstrates Durra-style event-triggered reconfiguration
// "used for error recovery purposes, where the reconfiguration is based on
// event-triggering mechanism" (§1): a primary store starts failing, the
// RAML's event trigger fires, and the frontend's binding is reconfigured to
// a standby replica — no request is lost afterward.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync/atomic"

	aas "repro"
)

// store serves lookups; Broken simulates a node/software failure.
type store struct {
	Tag    string
	Broken atomic.Bool
}

func (s *store) Handle(op string, args []any) ([]any, error) {
	if s.Broken.Load() {
		return nil, errors.New("store: disk failure")
	}
	if op != "get" {
		return nil, fmt.Errorf("unknown op %s", op)
	}
	return []any{"value-from-" + s.Tag}, nil
}

// frontend fans requests to its bound store.
type frontend struct{ caller aas.Caller }

func (f *frontend) SetCaller(c aas.Caller) { f.caller = c }
func (f *frontend) Handle(op string, args []any) ([]any, error) {
	return f.caller.Call("get", args...)
}

const config = `
system Failover {
  component Front {
    provide read(key) -> (value)
    require get(key) -> (value)
  }
  component Primary {
    provide get(key) -> (value)
  }
  component Standby {
    provide get(key) -> (value)
  }
  connector Link { kind rpc }
  bind Front.get -> Primary.get via Link
}
`

func main() {
	primary := &store{Tag: "primary"}
	standby := &store{Tag: "standby"}

	reg := aas.NewRegistry()
	reg.MustRegister("Front", "1.0", nil, func() any { return &frontend{} })
	reg.MustRegister("Primary", "1.0", nil, func() any { return primary })
	reg.MustRegister("Standby", "1.0", nil, func() any { return standby })

	sys, err := aas.Load(config, aas.Options{Registry: reg.Registry})
	if err != nil {
		log.Fatal(err)
	}

	// Durra-style error-recovery trigger: on a failed request at Primary,
	// rebind the frontend to the standby.
	failedOver := make(chan struct{}, 1)
	err = sys.AddEventTrigger(aas.EventTrigger{
		Name: "primary-error-recovery",
		Kind: aas.EvRequestFailed,
		Action: func(s *aas.System, e aas.Event) error {
			if e.Component != "Primary" {
				return nil
			}
			if err := s.Rebind("Front", "get", "Standby"); err != nil {
				return err
			}
			select {
			case failedOver <- struct{}{}:
			default:
			}
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	if err := sys.Start(context.Background()); err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()

	// One compiled binding handle for the whole session: it stays valid
	// across the Rebind below — the next call simply routes to the standby.
	ctx := context.Background()
	front := sys.Client("Front")

	res, err := front.Call(ctx, "read", "k")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healthy:   read(k) = %v\n", res[0])

	fmt.Println("injecting primary failure...")
	primary.Broken.Store(true)

	// The next request fails once; the trigger reconfigures the binding.
	if _, err := front.Call(ctx, "read", "k"); err != nil {
		fmt.Printf("during:    read(k) failed as expected: %v\n", err)
	}
	<-failedOver

	ok, failed := 0, 0
	for i := 0; i < 100; i++ {
		res, err := front.Call(ctx, "read", "k")
		if err != nil {
			failed++
			continue
		}
		ok++
		if i == 0 {
			fmt.Printf("recovered: read(k) = %v\n", res[0])
		}
	}
	fmt.Printf("after failover: %d ok, %d failed of 100 requests\n", ok, failed)

	for _, e := range sys.Events().History(aas.EvTriggerFired) {
		fmt.Printf("[raml] trigger fired: %s (component %s)\n", e.Detail, e.Component)
	}
}
