// Command failover demonstrates error recovery at two scales.
//
// Act 1 is Durra-style event-triggered reconfiguration "used for error
// recovery purposes, where the reconfiguration is based on event-triggering
// mechanism" (§1): a primary store starts failing, the RAML's event trigger
// fires, and the frontend's binding is reconfigured to a standby replica —
// no request is lost afterward.
//
// Act 2 moves the same idea to the elastic cluster plane (DESIGN.md §12): a
// three-node cluster replicates a stateful store's snapshots to a
// gossip-advertised follower; when the hosting node is killed, the follower
// promotes the store warm — the restored counter proves no acked state was
// lost.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	aas "repro"

	"repro/internal/registry"
)

// store serves lookups; Broken simulates a node/software failure.
type store struct {
	Tag    string
	Broken atomic.Bool
}

func (s *store) Handle(op string, args []any) ([]any, error) {
	if s.Broken.Load() {
		return nil, errors.New("store: disk failure")
	}
	if op != "get" {
		return nil, fmt.Errorf("unknown op %s", op)
	}
	return []any{"value-from-" + s.Tag}, nil
}

// frontend fans requests to its bound store.
type frontend struct{ caller aas.Caller }

func (f *frontend) SetCaller(c aas.Caller) { f.caller = c }
func (f *frontend) Handle(op string, args []any) ([]any, error) {
	return f.caller.Call("get", args...)
}

const config = `
system Failover {
  component Front {
    provide read(key) -> (value)
    require get(key) -> (value)
  }
  component Primary {
    provide get(key) -> (value)
  }
  component Standby {
    provide get(key) -> (value)
  }
  connector Link { kind rpc }
  bind Front.get -> Primary.get via Link
}
`

func main() {
	primary := &store{Tag: "primary"}
	standby := &store{Tag: "standby"}

	reg := aas.NewRegistry()
	reg.MustRegister("Front", "1.0", nil, func() any { return &frontend{} })
	reg.MustRegister("Primary", "1.0", nil, func() any { return primary })
	reg.MustRegister("Standby", "1.0", nil, func() any { return standby })

	sys, err := aas.Load(config, aas.Options{Registry: reg.Registry})
	if err != nil {
		log.Fatal(err)
	}

	// Durra-style error-recovery trigger: on a failed request at Primary,
	// rebind the frontend to the standby.
	failedOver := make(chan struct{}, 1)
	err = sys.AddEventTrigger(aas.EventTrigger{
		Name: "primary-error-recovery",
		Kind: aas.EvRequestFailed,
		Action: func(s *aas.System, e aas.Event) error {
			if e.Component != "Primary" {
				return nil
			}
			if err := s.Rebind("Front", "get", "Standby"); err != nil {
				return err
			}
			select {
			case failedOver <- struct{}{}:
			default:
			}
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	if err := sys.Start(context.Background()); err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()

	// One compiled binding handle for the whole session: it stays valid
	// across the Rebind below — the next call simply routes to the standby.
	ctx := context.Background()
	front := sys.Client("Front")

	res, err := front.Call(ctx, "read", "k")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healthy:   read(k) = %v\n", res[0])

	fmt.Println("injecting primary failure...")
	primary.Broken.Store(true)

	// The next request fails once; the trigger reconfigures the binding.
	if _, err := front.Call(ctx, "read", "k"); err != nil {
		fmt.Printf("during:    read(k) failed as expected: %v\n", err)
	}
	<-failedOver

	ok, failed := 0, 0
	for i := 0; i < 100; i++ {
		res, err := front.Call(ctx, "read", "k")
		if err != nil {
			failed++
			continue
		}
		ok++
		if i == 0 {
			fmt.Printf("recovered: read(k) = %v\n", res[0])
		}
	}
	fmt.Printf("after failover: %d ok, %d failed of 100 requests\n", ok, failed)

	for _, e := range sys.Events().History(aas.EvTriggerFired) {
		fmt.Printf("[raml] trigger fired: %s (component %s)\n", e.Detail, e.Component)
	}

	sys.Stop()
	clusterAct()
}

// counter is the stateful store for the cluster act: Snapshot/Restore make
// it replicable, and its count proves what survived the failover.
type counter struct {
	mu sync.Mutex
	n  int64
}

func (c *counter) Handle(op string, args []any) ([]any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch op {
	case "get":
		c.n++
		return []any{args[0]}, nil
	case "count":
		return []any{int(c.n)}, nil
	}
	return nil, fmt.Errorf("counter: unknown op %s", op)
}

func (c *counter) Snapshot() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return []byte(strconv.FormatInt(c.n, 10)), nil
}

func (c *counter) Restore(b []byte) error {
	n, err := strconv.ParseInt(string(b), 10, 64)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.n = n
	c.mu.Unlock()
	return nil
}

const clusterConfig = `
system Elastic {
  component Front {
    provide fetch(key) -> (value)
    require get(key) -> (value)
  }
  component Store {
    provide get(key) -> (value)
    provide count() -> (n)
  }
  connector Link { kind rpc }
  bind Front.get -> Store.get via Link
}
`

// clusterAct: warm-standby promotion across a three-node cluster.
func clusterAct() {
	fmt.Println()
	fmt.Println("=== act 2: three-node warm-standby promotion ===")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h, err := aas.StartCluster(ctx, aas.ClusterSpec{
		ADL:       clusterConfig,
		Nodes:     []string{"n1", "n2", "n3"},
		Placement: map[string]string{"Front": "n1", "Store": "n2"},
		Registry: func(string) *registry.Registry {
			reg := aas.NewRegistry()
			reg.MustRegister("Front", "1.0", nil, func() any { return &frontend{} })
			reg.MustRegister("Store", "1.0", nil, func() any { return &counter{} })
			return reg.Registry
		},
		Cluster: func(string) aas.ClusterOptions {
			return aas.ClusterOptions{Heartbeat: 50 * time.Millisecond,
				FailAfter: 300 * time.Millisecond, SuspectAfter: 300 * time.Millisecond}
		},
		SeedJoin: true, // n2 and n3 discover the mesh through n1's address
	})
	if err != nil {
		log.Fatal(err)
	}
	defer h.Close()
	fmt.Println("cluster up: Front on n1, Store on n2, n3 idle (joined via seed + gossip)")

	for _, id := range h.Nodes() {
		if err := h.Node(id).EnableFailover(); err != nil {
			log.Fatal(err)
		}
	}
	rep := h.Node("n2").StartReplicator(aas.ReplicatorOptions{Interval: time.Hour})
	defer rep.Stop()

	// Put load through the stateful store.
	completed := 0
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%d", i)
		if out, err := h.System("n1").Call("Front", "fetch", key); err != nil || out[0] != key {
			log.Fatalf("fetch %s: %v %v", key, out, err)
		}
		completed++
	}
	fmt.Printf("load:      %d fetches completed against Store on n2\n", completed)

	// Ship the state and wait until the follower acked it and the survivors
	// learned the follower assignment through gossip.
	rep.ReplicateNow()
	deadline := time.Now().Add(10 * time.Second)
	follower := ""
	for follower == "" {
		if time.Now().After(deadline) {
			log.Fatal("replication never acked")
		}
		snap := h.Node("n2").Telemetry()
		if len(snap.Replication) == 1 && snap.Replication[0].AckedSeq > 0 &&
			snap.Replication[0].AckedSeq == snap.Replication[0].ShippedSeq {
			follower = snap.Replication[0].Follower
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, id := range []string{"n1", "n3"} {
		for {
			m, ok := h.Node(id).Member("n2")
			if ok && len(m.Components) == 1 && m.Components[0].Follower == follower {
				break
			}
			if time.Now().After(deadline) {
				log.Fatal("follower assignment never gossiped")
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	fmt.Printf("replicate: snapshot seq acked by follower %s\n", follower)

	fmt.Println("killing n2 (hard stop, no goodbye)...")
	h.Kill("n2")

	// The follower promotes Store warm; service resumes with state intact.
	for {
		if out, err := h.System("n1").Call("Front", "fetch", "post-kill"); err == nil && out[0] == "post-kill" {
			completed++
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("service never recovered after the kill")
		}
		time.Sleep(20 * time.Millisecond)
	}
	out, err := h.System(follower).Call("Store", "count")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: Store promoted warm on %s, count=%v (completed=%d)\n", follower, out[0], completed)
	if out[0].(int) != completed {
		log.Fatalf("state mismatch after warm failover: count=%v completed=%d", out[0], completed)
	}
	if lost := h.System(follower).Events().History(aas.EvStateLost); len(lost) != 0 {
		log.Fatalf("warm failover emitted EvStateLost: %v", lost)
	}
	fmt.Println("warm failover: zero state lost, zero mismatches")
}
