// Command mobility demonstrates geographical reconfiguration: services
// "reconfigured automatically according to user's mobility, preferences,
// profiles and equipments" (introduction), and §1's guidance that
// "performance criteria may require the migration of some components so
// that they are 'closer' to the demand".
//
// A session component serves a user who commutes between Europe and the US.
// A criteria trigger watches the observed request latency; when the user's
// region shifts, the trigger migrates the session component to the user's
// region and the latency drops back.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	aas "repro"

	"repro/internal/netsim"
)

// session is a lightweight stateless session server.
type session struct{}

func (session) Handle(op string, args []any) ([]any, error) {
	if op != "frame" {
		return nil, fmt.Errorf("unknown op %s", op)
	}
	return []any{"frame-data"}, nil
}

const config = `
system Mobility {
  component Session {
    provide frame(id) -> (data)
    property cpu = 1
  }
  deploy Session on region=eu cpu=1
}
`

func main() {
	topo := aas.NewTopology(42, time.Millisecond, 0)
	if _, err := topo.AddNode("eu-1", "eu", 8, false); err != nil {
		log.Fatal(err)
	}
	if _, err := topo.AddNode("us-1", "us", 8, false); err != nil {
		log.Fatal(err)
	}
	topo.SetRegionLatency("eu", "us", 80*time.Millisecond)

	reg := aas.NewRegistry()
	reg.MustRegister("Session", "1.0", nil, func() any { return session{} })

	sys, err := aas.Load(config, aas.Options{Registry: reg.Registry, Topology: topo})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()

	fmt.Printf("session initially on %s\n\n", sys.Placement()["Session"])

	// One compiled binding handle for the whole commute: migrations repoint
	// it transparently, and the per-call deadline budget bounds a frame
	// fetch end-to-end.
	session := sys.Client("Session").With(aas.WithDeadline(2 * time.Second))

	// The user's phone measures round-trip latency from its current region.
	measure := func(userRegion aas.Region) time.Duration {
		node := string(userRegion) + "-1"
		sessionNode := sys.Placement()["Session"]
		lat, err := topo.BaseLatency(netsim.NodeID(node), sessionNode)
		if err != nil {
			log.Fatal(err)
		}
		// One request-reply round trip.
		return 2 * lat
	}

	commute := []aas.Region{"eu", "eu", "us", "us", "us", "eu"}
	for leg, userRegion := range commute {
		if _, err := session.Call(context.Background(), "frame", leg); err != nil {
			log.Fatalf("frame fetch on leg %d: %v", leg, err)
		}
		rtt := measure(userRegion)
		fmt.Printf("leg %d: user in %-2s  session on %-4s  rtt=%-6v",
			leg, userRegion, sys.Placement()["Session"], rtt)

		// RAML policy: if the user's observed RTT exceeds 50ms, migrate the
		// session to the user's region ("closer to the demand").
		if rtt > 50*time.Millisecond {
			target := netsim.NodeID(string(userRegion) + "-1")
			if err := sys.Migrate("Session", target); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  -> migrate to %s (rtt now %v)", target, measure(userRegion))
		}
		fmt.Println()
	}

	fmt.Println()
	for _, e := range sys.Events().History(aas.EvMigration) {
		fmt.Printf("[raml] migration %s %s\n", e.Component, e.Detail)
	}
}
