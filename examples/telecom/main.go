// Command telecom reproduces the paper's motivating scenario: a multimedia
// telecom service under rush-hour load. "If users get connected to wireless
// multimedia telecom services during rush hours, dynamic adaptability may
// be required to master the adaptation instead of dropping calls [or]
// rejecting packets arbitrarily with no care about the rendering" (§2).
//
// A video service (the extract → encode → transfer composition path of
// [Hong01], collapsed into a service queue) serves a diurnal load trace.
// Four policies run on the same deterministic trace:
//
//	none      — fixed capacity: calls degrade during the rush hour
//	threshold — bang-bang capacity steps (the arbitrary reaction)
//	pid       — classical feedback control of capacity [Dutt97, Kuo95]
//	fuzzy     — intelligent (soft-computing) control [Gupt96, Gupt00]
//
// The run is fully simulated, so results are reproducible; this is
// experiment E7's scenario in example form.
package main

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/control"
	"repro/internal/netsim"
)

const (
	targetLatency = 0.050 // seconds: the contracted p95
	// controlTarget regulates below the contract bound so that transients
	// stay inside it (a 30% engineering margin).
	controlTarget = 0.035
	tick          = time.Second
	hours         = 24
)

func main() {
	trace := netsim.Sum{
		netsim.Diurnal{Base: 40, Peak: 120, Period: 24 * time.Hour,
			PeakAt: 18 * time.Hour, Sharpness: 3},
		netsim.Spikes{Base: 0, Height: 30, Interval: 6 * time.Hour, Width: 20 * time.Minute},
	}

	fmt.Printf("telecom rush-hour scenario: latency contract p95 <= %.0fms over %dh\n\n",
		targetLatency*1000, hours)
	fmt.Printf("%-10s %12s %14s %14s %12s\n",
		"policy", "violation%", "mean lat (ms)", "p95 lat (ms)", "mean cap")

	for _, policy := range []string{"none", "threshold", "pid", "fuzzy"} {
		r := run(policy, trace)
		fmt.Printf("%-10s %11.1f%% %14.1f %14.1f %12.0f\n",
			policy, r.violationFrac*100, r.meanLat*1000, r.p95Lat*1000, r.meanCap)
	}
	fmt.Println("\nthe feedback-controlled policies hold the contract through the rush hour;")
	fmt.Println("the static policy violates it exactly when users need the service most.")
}

type result struct {
	violationFrac float64
	meanLat       float64
	p95Lat        float64
	meanCap       float64
}

// run simulates one capacity policy over the full trace.
func run(policy string, trace netsim.Trace) result {
	var ctrl control.Controller
	switch policy {
	case "none":
		ctrl = &control.Static{Value: 90} // enough off-peak, not at peak
	case "threshold":
		ctrl = &control.Threshold{Deadband: 2, Step: 5, OutMin: 60, OutMax: 400}
	case "pid":
		ctrl = &control.PID{Kp: 0.5, Ki: 0.2, IntMax: 2000, OutMin: 60, OutMax: 400}
	case "fuzzy":
		ctrl = &control.Fuzzy{ErrScale: 30, DErrScale: 60, OutScale: 25,
			OutMin: 60, OutMax: 400}
	}

	queue := &control.ServiceQueue{Arrival: trace.At(0), MinHeadroom: 2}
	lat := queue.Step(90, tick)
	// The control loop regulates service headroom (1/latency), which
	// responds linearly to the capacity actuator.
	targetHeadroom := 1 / controlTarget

	steps := int((hours * time.Hour) / tick)
	latencies := make([]float64, 0, steps)
	violations := 0
	var capSum float64
	for i := 0; i < steps; i++ {
		at := time.Duration(i) * tick
		queue.Arrival = trace.At(at)
		u := ctrl.Update(targetHeadroom, 1/lat, tick)
		lat = queue.Step(u, tick)
		latencies = append(latencies, lat)
		if lat > targetLatency {
			violations++
		}
		capSum += queue.Capacity()
	}

	sort.Float64s(latencies)
	var sum float64
	for _, l := range latencies {
		sum += l
	}
	return result{
		violationFrac: float64(violations) / float64(steps),
		meanLat:       sum / float64(len(latencies)),
		p95Lat:        latencies[int(0.95*float64(len(latencies)-1))],
		meanCap:       capSum / float64(steps),
	}
}
