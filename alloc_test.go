// Allocation-regression tests (DESIGN.md §8): the typed call surface and
// the QoS hot counters have hard per-call allocation ceilings, enforced with
// testing.AllocsPerRun so a regression fails in CI rather than surfacing as
// a slow drift in benchmark numbers. AllocsPerRun counts allocations across
// all goroutines, so the serving side of a call is included in the budget —
// and so stray background work from earlier tests in the package can inflate
// a single batch. minAllocsPerRun takes the best of several batches: the
// floor is the path's own cost, the outliers are the interference.
package aas_test

import (
	"context"
	"errors"
	"testing"
	"time"

	aas "repro"

	"repro/internal/qos"
	"repro/internal/telemetry"
)

func minAllocsPerRun(batches, runs int, f func()) float64 {
	best := testing.AllocsPerRun(runs, f)
	for i := 1; i < batches; i++ {
		if a := testing.AllocsPerRun(runs, f); a < best {
			best = a
		}
	}
	return best
}

// TestTypedCallAllocs pins the synchronous typed local call at ≤2
// allocations per call (measured: 1 — the aspect-invocation frame; the
// envelope, reply channel, waiter slot and timer are all pooled or reused).
func TestTypedCallAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	reg := aas.NewRegistry()
	reg.MustRegister("Greeter", "1.0", nil, func() any { return &typedGreeter{Greeting: "Hello"} })
	sys, err := aas.Load(greeterADL, aas.Options{Registry: reg.Registry})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	ctx := context.Background()
	g := aas.ClientOf[string, string](sys, "Greeter")
	// Warm the envelope pool and the serve workers before measuring.
	for i := 0; i < 64; i++ {
		if _, err := g.Call(ctx, "greet", "world"); err != nil {
			t.Fatal(err)
		}
	}
	allocs := minAllocsPerRun(5, 200, func() {
		if _, err := g.Call(ctx, "greet", "world"); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("typed call allocates %.1f/op, budget 2", allocs)
	}
}

// TestTypedAsyncAllocs pins the asynchronous typed call. Async envelopes
// are deliberately never pooled (concurrent Waits race a recycled channel)
// and each future carries its own channel and fallback timer, so the
// ceiling is higher — but still bounded.
func TestTypedAsyncAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	reg := aas.NewRegistry()
	reg.MustRegister("Greeter", "1.0", nil, func() any { return &typedGreeter{Greeting: "Hello"} })
	sys, err := aas.Load(greeterADL, aas.Options{Registry: reg.Registry})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	ctx := context.Background()
	g := aas.ClientOf[string, string](sys, "Greeter")
	for i := 0; i < 64; i++ {
		if _, err := g.Async(ctx, "greet", "world").Wait(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := minAllocsPerRun(5, 200, func() {
		if _, err := g.Async(ctx, "greet", "world").Wait(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 12 {
		t.Fatalf("typed async call allocates %.1f/op, budget 12", allocs)
	}
}

// TestAdmissionEstimatorAllocs pins the admission estimator's hot methods —
// one Observe per served call, one Admit per deadline-budgeted call — at
// zero allocations.
func TestAdmissionEstimatorAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	a := qos.NewAdmission(4)
	a.Observe(int64(2 * time.Millisecond))
	allocs := minAllocsPerRun(3, 1000, func() {
		a.Observe(int64(time.Millisecond))
		if !a.Admit(3, int64(time.Second)) {
			t.Fatal("healthy admission rejected")
		}
	})
	if allocs != 0 {
		t.Fatalf("Admission hot path allocates %.1f/op, budget 0", allocs)
	}
}

// TestOverloadRejectAllocs pins the end-to-end shed path at zero: a typed
// call rejected by admission control exits with the bare ErrOverloaded
// sentinel before the envelope lease, so a caller retry-looping against an
// overloaded component costs no garbage at all.
func TestOverloadRejectAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	_, short, cleanup := startSaturated(t)
	defer cleanup()
	ctx := context.Background()
	allocs := minAllocsPerRun(5, 200, func() {
		if _, err := short.Call(ctx, "work", "x"); !errors.Is(err, aas.ErrOverloaded) {
			t.Fatalf("err = %v, want ErrOverloaded", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("rejected call allocates %.1f/op, budget 0", allocs)
	}
}

// TestAdmittedDeadlineCallAllocs pins the accept side: the admission check
// plus the deadline stamp must not lift the synchronous typed call above its
// existing 2-allocation ceiling.
func TestAdmittedDeadlineCallAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	reg := aas.NewRegistry()
	reg.MustRegister("Greeter", "1.0", nil, func() any { return &typedGreeter{Greeting: "Hello"} })
	sys, err := aas.Load(greeterADL, aas.Options{Registry: reg.Registry})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	ctx := context.Background()
	g := aas.ClientOf[string, string](sys, "Greeter").With(aas.WithDeadline(time.Second))
	for i := 0; i < 64; i++ {
		if _, err := g.Call(ctx, "greet", "world"); err != nil {
			t.Fatal(err)
		}
	}
	allocs := minAllocsPerRun(5, 200, func() {
		if _, err := g.Call(ctx, "greet", "world"); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("admitted deadline call allocates %.1f/op, budget 2", allocs)
	}
}

// TestMonitorRecordAllocs pins the QoS hot counter at zero allocations.
func TestMonitorRecordAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	m := qos.NewMonitor(nil, 0, 64)
	m.Record(qos.Latency, 0.001)
	allocs := minAllocsPerRun(3, 1000, func() {
		m.Record(qos.Latency, 0.001)
		m.Record(qos.Throughput, 1)
	})
	if allocs != 0 {
		t.Fatalf("Monitor.Record allocates %.1f/op, budget 0", allocs)
	}
}

// TestSpanRecordAllocs pins the telemetry record path at zero allocations:
// one span write is an atomic claim plus plain word stores into a
// preallocated ring slot (DESIGN.md §11).
func TestSpanRecordAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	r := telemetry.NewRecorder(0)
	s := telemetry.Span{Trace: 1, ID: 1, Start: 100, End: 200, Op: "op", Comp: "C"}
	allocs := minAllocsPerRun(3, 1000, func() {
		r.Record(s)
		if !r.SampleRoot() {
			t.Fatal("rate-1 recorder must sample")
		}
	})
	if allocs != 0 {
		t.Fatalf("span record allocates %.1f/op, budget 0", allocs)
	}
}

// TestTracedCallAllocsSamplingOff proves tracing costs nothing when turned
// off: the same typed call path that holds the 2-allocation budget with
// sampling on (TestTypedCallAllocs) holds it with sampling off too —
// tracing on ≈ tracing off, the span machinery adds no per-call garbage
// either way.
func TestTracedCallAllocsSamplingOff(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	reg := aas.NewRegistry()
	reg.MustRegister("Greeter", "1.0", nil, func() any { return &typedGreeter{Greeting: "Hello"} })
	sys, err := aas.Load(greeterADL, aas.Options{Registry: reg.Registry, TraceSampling: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	ctx := context.Background()
	g := aas.ClientOf[string, string](sys, "Greeter")
	for i := 0; i < 64; i++ {
		if _, err := g.Call(ctx, "greet", "world"); err != nil {
			t.Fatal(err)
		}
	}
	allocs := minAllocsPerRun(5, 200, func() {
		if _, err := g.Call(ctx, "greet", "world"); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("untraced typed call allocates %.1f/op, budget 2", allocs)
	}
	if spans := sys.Spans(); len(spans) != 0 {
		t.Fatalf("sampling off recorded %d spans", len(spans))
	}
}

// TestStreamRecvAllocs pins the stream plane's per-item receive cost at ≤1
// allocation per item, producer side included (the handler sends pre-boxed
// items, so the measurement is the plane: credit acquire, pooled chunk
// envelope, bus push, ring insert, Recv, auto-grant). The pooled envelope
// and the ring make the steady-state path allocation-free; the budget of 1
// absorbs scheduling jitter attributing a producer-side allocation into a
// measured run.
func TestStreamRecvAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	f := newFeed()
	reg := aas.NewRegistry()
	reg.MustRegister("Feed", "1.0", nil, func() any { return f })
	sys, err := aas.Load(feedADL, aas.Options{Registry: reg.Registry})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	ctx := context.Background()
	st, err := sys.Client("Feed").Stream(ctx, "pump")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Warm the chunk-envelope pool and fill the ring before measuring.
	for i := 0; i < 64; i++ {
		if _, err := st.Recv(ctx); err != nil {
			t.Fatal(err)
		}
	}
	allocs := minAllocsPerRun(5, 200, func() {
		if _, err := st.Recv(ctx); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("stream receive allocates %.1f/item, budget 1", allocs)
	}
}
