//go:build race

package aas_test

const raceEnabled = true
