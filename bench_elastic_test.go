// Benchmarks for the elastic cluster plane (E22): the gossip beacon's wire
// cost, the live rebalancing planner, and end-to-end warm-standby snapshot
// shipping with acknowledgement. The gossip and replicate paths run on every
// heartbeat of every link, so their per-op allocation count is watched as
// closely as their latency.
package aas_test

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	aas "repro"

	"repro/internal/deploy"
	"repro/internal/registry"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// benchGossipView builds a converged-size view: 16 members, 4 components
// each — a realistic steady-state beacon payload.
func benchGossipView() wire.Gossip {
	g := wire.Gossip{Members: make([]wire.GossipMember, 16)}
	for i := range g.Members {
		m := &g.Members[i]
		m.Node = fmt.Sprintf("node-%02d", i)
		m.Addr = fmt.Sprintf("10.0.0.%d:7400", i+1)
		m.Incarnation = uint64(1700000000 + i)
		m.Version = uint64(1000 * i)
		m.Status = wire.GossipAlive
		m.Load = float64(i) * 1e5
		for c := 0; c < 4; c++ {
			m.Comps = append(m.Comps, wire.GossipComp{
				Name:     fmt.Sprintf("Comp-%02d-%d", i, c),
				Load:     float64(c) * 2.5e4,
				Follower: fmt.Sprintf("node-%02d", (i+1)%16),
			})
		}
	}
	return g
}

// BenchmarkMembershipGossipEncode measures the append-style serialisation of
// one full beacon — the sender side of every v7 heartbeat.
func BenchmarkMembershipGossipEncode(b *testing.B) {
	view := benchGossipView()
	buf := make([]byte, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = wire.AppendGossip(buf[:0], view)
	}
	if len(buf) == 0 {
		b.Fatal("empty gossip payload")
	}
}

// BenchmarkMembershipGossipRoundtrip measures encode plus parse — what a
// beacon costs the pair of nodes exchanging it.
func BenchmarkMembershipGossipRoundtrip(b *testing.B) {
	view := benchGossipView()
	buf := wire.AppendGossip(nil, view)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := wire.ParseGossip(buf)
		if err != nil || len(g.Members) != len(view.Members) {
			b.Fatalf("roundtrip: %v (%d members)", err, len(g.Members))
		}
	}
}

// benchLiveInput: 8 nodes, 64 components, all load piled on the first two
// nodes — the shape the rebalancer sees right after a scale-out.
func benchLiveInput() deploy.LiveInput {
	in := deploy.LiveInput{
		Placement: map[string]string{},
		Load:      map[string]float64{},
	}
	for n := 0; n < 8; n++ {
		in.Nodes = append(in.Nodes, fmt.Sprintf("node-%d", n))
	}
	for c := 0; c < 64; c++ {
		comp := fmt.Sprintf("Comp-%02d", c)
		in.Placement[comp] = in.Nodes[c%2]
		in.Load[comp] = float64(c%7+1) * 1e5
	}
	return in
}

// BenchmarkPlacementPlanLive measures one planning round over a skewed
// cluster — the work each placer tick does on the converged view.
func BenchmarkPlacementPlanLive(b *testing.B) {
	in := benchLiveInput()
	// MinGain is lowered so the fine-grained 64-component input plans real
	// moves instead of tripping the churn damping — the point here is the
	// planning cost, not the hysteresis.
	planner := deploy.Rebalance{MaxMoves: 4, MinGain: 0.01}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if moves := planner.PlanLive(in); len(moves) == 0 {
			b.Fatal("skewed input planned no moves")
		}
	}
}

// BenchmarkPlacementFromSnapshots measures assembling the planner input from
// per-node telemetry snapshots, admission section included.
func BenchmarkPlacementFromSnapshots(b *testing.B) {
	snaps := make([]telemetry.Snapshot, 8)
	for n := range snaps {
		snaps[n].Node = fmt.Sprintf("node-%d", n)
		snaps[n].TakenNanos = int64(n)
		for c := 0; c < 8; c++ {
			snaps[n].Admission = append(snaps[n].Admission, telemetry.AdmissionState{
				Component: fmt.Sprintf("Comp-%d-%d", n, c), EstimateNanos: float64(c) * 1e5,
			})
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := deploy.FromSnapshots(snaps)
		if len(in.Nodes) != 8 {
			b.Fatalf("nodes = %v", in.Nodes)
		}
	}
}

const benchElasticADL = `
system Elastic {
  component Store {
    provide get(key) -> (value)
  }
}
`

// elasticKV is a capturable component with a fixed-size state payload.
type elasticKV struct {
	mu    sync.Mutex
	n     int64
	state []byte
}

func (s *elasticKV) Handle(op string, args []any) ([]any, error) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	return []any{args[0]}, nil
}

func (s *elasticKV) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == nil {
		s.state = make([]byte, 1024)
	}
	copy(s.state, strconv.FormatInt(s.n, 10))
	return s.state, nil
}

func (s *elasticKV) Restore(b []byte) error { return nil }

// BenchmarkReplicateShipAck measures the full warm-standby cycle over a real
// loopback link: snapshot the component, ship the frame to the follower,
// follower installs the standby and acks, origin observes the ack.
func BenchmarkReplicateShipAck(b *testing.B) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h, err := aas.StartCluster(ctx, aas.ClusterSpec{
		ADL:       benchElasticADL,
		Nodes:     []string{"n1", "n2"},
		Placement: map[string]string{"Store": "n1"},
		Registry: func(string) *registry.Registry {
			reg := aas.NewRegistry()
			reg.MustRegister("Store", "1.0", nil, func() any { return &elasticKV{} })
			return reg.Registry
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer h.Close()
	rep := h.Node("n1").StartReplicator(aas.ReplicatorOptions{Interval: time.Hour})
	defer rep.Stop()

	acked := func() uint64 {
		snap := h.Node("n1").Telemetry()
		if len(snap.Replication) == 1 {
			return snap.Replication[0].AckedSeq
		}
		return 0
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if shipped := rep.ReplicateNow(); shipped != 1 {
			b.Fatalf("shipped %d, want 1", shipped)
		}
		want := uint64(i + 1)
		for acked() < want {
			time.Sleep(50 * time.Microsecond)
		}
	}
}
