// Tests for server-streaming calls with credit-based flow control
// (DESIGN.md §10): the local stream plane end-to-end — ordering and clean
// end, typed handles, the credit window bounding a producer ahead of a slow
// consumer, cancellation reclaiming the producer without waiting out the
// deadline, and the conservation ledger sent == received + shed.
package aas_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"testing"
	"time"

	aas "repro"
)

const feedADL = `
system Streaming {
  component Feed {
    provide list(n) -> (item)
    provide pump() -> (item)
    provide greet(name) -> (message)
  }
}
`

// feed serves bounded ("list") and unbounded ("pump") streams. sent counts
// successful sink.Sends — the producer side of the conservation ledger.
type feed struct {
	sent atomic.Uint64
	// preboxed items keep handler-side any-boxing out of the per-item
	// allocation measurements: the plane's cost is what the budget pins.
	items [256]any
}

func newFeed() *feed {
	f := &feed{}
	for i := range f.items {
		f.items[i] = fmt.Sprintf("item-%03d", i)
	}
	return f
}

func (f *feed) Handle(op string, args []any) ([]any, error) {
	if op == "greet" {
		return []any{"hi " + args[0].(string)}, nil
	}
	return nil, fmt.Errorf("feed: unknown op %s", op)
}

func (f *feed) HandleStream(op string, args []any, sink aas.StreamSink) error {
	switch op {
	case "list":
		n := args[0].(int)
		for i := 0; i < n; i++ {
			if err := sink.Send(i); err != nil {
				return err
			}
			f.sent.Add(1)
		}
		return nil
	case "pump":
		for i := 0; ; i++ {
			if err := sink.Send(f.items[i&255]); err != nil {
				return err
			}
			f.sent.Add(1)
		}
	}
	return aas.ErrUnstreamableOp
}

func startFeed(t *testing.T) (*aas.System, *feed) {
	t.Helper()
	f := newFeed()
	reg := aas.NewRegistry()
	reg.MustRegister("Feed", "1.0", nil, func() any { return f })
	sys, err := aas.Load(feedADL, aas.Options{Registry: reg.Registry})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Stop)
	return sys, f
}

// waitStreamsReclaimed polls until no producer is running on the system.
func waitStreamsReclaimed(t *testing.T, sys *aas.System, within time.Duration) time.Duration {
	t.Helper()
	start := time.Now()
	deadline := start.Add(within)
	for sys.ActiveStreams() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("producer still running after %v (ActiveStreams=%d)", within, sys.ActiveStreams())
		}
		time.Sleep(2 * time.Millisecond)
	}
	return time.Since(start)
}

// TestStreamBasic: a bounded stream delivers every item in order and ends
// with io.EOF; the table slot and the producer are released.
func TestStreamBasic(t *testing.T) {
	sys, f := startFeed(t)
	ctx := context.Background()
	const n = 1000
	st, err := sys.Client("Feed").Stream(ctx, "list", n)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < n; i++ {
		item, err := st.Recv(ctx)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if item != i {
			t.Fatalf("recv %d: got %v", i, item)
		}
	}
	if _, err := st.Recv(ctx); err != io.EOF {
		t.Fatalf("terminal: want io.EOF, got %v", err)
	}
	if got := st.Received(); got != n {
		t.Fatalf("received %d, want %d", got, n)
	}
	if f.sent.Load() != n {
		t.Fatalf("sent %d, want %d", f.sent.Load(), n)
	}
	if sys.PendingStreams() != 0 {
		t.Fatalf("stream table leaked: %d", sys.PendingStreams())
	}
	waitStreamsReclaimed(t, sys, time.Second)
}

// TestStreamTyped: the StreamOf handle decodes each item through the
// derived codec, and io.EOF terminates it like the untyped stream.
func TestStreamTyped(t *testing.T) {
	sys, _ := startFeed(t)
	ctx := context.Background()
	const n = 100
	h := aas.StreamOf[int, int](sys, "Feed")
	st, err := h.Stream(ctx, "list", n)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < n; i++ {
		item, err := st.Recv(ctx)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if item != i {
			t.Fatalf("recv %d: got %d", i, item)
		}
	}
	if _, err := st.Recv(ctx); err != io.EOF {
		t.Fatalf("terminal: want io.EOF, got %v", err)
	}
}

// TestStreamWindowBoundsProducer: a consumer that stops calling Recv stalls
// the producer at the credit window — the handler's sink.Send blocks, and
// outstanding (sent − consumed) never exceeds the window. This is the
// backpressure claim: a slow consumer costs the producer blocked time, not
// the system unbounded memory.
func TestStreamWindowBoundsProducer(t *testing.T) {
	sys, f := startFeed(t)
	ctx := context.Background()
	const window = 8
	cl := sys.Client("Feed").With(aas.WithStreamWindow(window))
	st, err := cl.Stream(ctx, "pump")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	consumed := 0
	for ; consumed < 3; consumed++ {
		if _, err := st.Recv(ctx); err != nil {
			t.Fatalf("recv: %v", err)
		}
	}
	// Let the producer run as far ahead as credit allows, then check the
	// bound. Grants replenish on consumption, so the producer may be ahead
	// by at most consumed + window.
	time.Sleep(50 * time.Millisecond)
	if sent := f.sent.Load(); sent > uint64(consumed+window) {
		t.Fatalf("producer ran %d ahead of consumer (consumed %d, window %d)",
			sent, consumed, window)
	}
	// Consuming more moves the window forward — the stream is stalled, not
	// dead.
	for i := 0; i < window*3; i++ {
		if _, err := st.Recv(ctx); err != nil {
			t.Fatalf("post-stall recv: %v", err)
		}
	}
}

// TestStreamCancelReclaimsProducer: closing the stream cancels the
// producer's context and fails its credit window, so the handler returns
// and the serving slot is reclaimed far inside the stream's deadline — and
// the conservation ledger closes: every chunk the producer sent was either
// received by the consumer or counted shed at the reply pump.
func TestStreamCancelReclaimsProducer(t *testing.T) {
	sys, f := startFeed(t)
	ctx := context.Background()
	cl := sys.Client("Feed").With(aas.WithDeadline(30 * time.Second))
	st, err := cl.Stream(ctx, "pump")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := st.Recv(ctx); err != nil {
			t.Fatalf("recv: %v", err)
		}
	}
	st.Close()
	reclaim := waitStreamsReclaimed(t, sys, 2*time.Second)
	if reclaim > 5*time.Second {
		t.Fatalf("reclaim took %v — deadline-bound, not cancel-bound", reclaim)
	}
	if sys.PendingStreams() != 0 {
		t.Fatalf("stream table leaked: %d", sys.PendingStreams())
	}
	// Conservation: the producer finished (reclaimed above), so every sent
	// chunk has settled — into the ring (received) or dropped at the pump
	// after Close (shed). The pump may still be draining the mailbox;
	// allow it a moment.
	deadline := time.Now().Add(2 * time.Second)
	for {
		sent, received, shed := f.sent.Load(), st.Received(), sys.ShedStreamItems()
		if sent == received+shed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("conservation: sent %d != received %d + shed %d", sent, received, shed)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestStreamDeadline: an expired stream deadline aborts the producer and
// surfaces as context.DeadlineExceeded at Recv.
func TestStreamDeadline(t *testing.T) {
	sys, _ := startFeed(t)
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	st, err := sys.Client("Feed").Stream(ctx, "pump")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for {
		_, err := st.Recv(ctx)
		if err == nil {
			continue
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("want deadline error, got %v", err)
		}
		break
	}
	waitStreamsReclaimed(t, sys, 2*time.Second)
}

// TestStreamUnstreamableOp: a stream opened on an op the component does not
// serve as a stream fails with a terminal end, not a hang.
func TestStreamUnstreamableOp(t *testing.T) {
	sys, _ := startFeed(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	st, err := sys.Client("Feed").Stream(ctx, "greet", "x")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Recv(ctx); err == nil || err == io.EOF {
		t.Fatalf("want unstreamable-op error, got %v", err)
	}
}
