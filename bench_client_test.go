// Benchmarks for the compiled client-binding call surface (DESIGN.md §7):
// the synchronous handle call vs the deprecated System.Call shim (the handle
// must be no slower — it skips per-call name resolution), the parallel
// platform edge, asynchronous fan-out, and deadline-carrying calls.
package aas_test

import (
	"context"
	"testing"
	"time"

	aas "repro"
)

// BenchmarkClientCall is the steady-state hot path: one compiled handle,
// sequential synchronous calls. Compare with BenchmarkE12_SystemCall (the
// deprecated shim) — cached resolution must not be slower and must not add
// allocations.
func BenchmarkClientCall(b *testing.B) {
	sys, _ := startBenchSystem(b)
	store := sys.Client("Store")
	ctx := context.Background()
	if _, err := store.Call(ctx, "put", "k", "v"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Call(ctx, "get", "k"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClientCallDeadline measures the call with a per-call context
// deadline: the deadline is stamped into the message and checked by the
// callee, and the caller's wait rides the context instead of a fallback
// timer.
func BenchmarkClientCallDeadline(b *testing.B) {
	sys, _ := startBenchSystem(b)
	store := sys.Client("Store")
	if _, err := store.Call(context.Background(), "put", "k", "v"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		if _, err := store.Call(ctx, "get", "k"); err != nil {
			b.Fatal(err)
		}
		cancel()
	}
}

// BenchmarkClientCallParallel is the platform edge under concurrent callers
// sharing one compiled handle — the Client analogue of
// BenchmarkSystemCallParallel.
func BenchmarkClientCallParallel(b *testing.B) {
	sys, _ := startBenchSystem(b)
	store := sys.Client("Store")
	ctx := context.Background()
	if _, err := store.Call(ctx, "put", "k", "v"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := store.Call(ctx, "get", "k"); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkTypedClientCall is the typed zero-alloc hot path (DESIGN.md §8):
// one compiled ClientOf handle, sequential synchronous calls served in place
// by HandleTyped. Compare with BenchmarkClientCall — the typed surface must
// eliminate the []any boxing allocations of the untyped handle.
func BenchmarkTypedClientCall(b *testing.B) {
	sys, _ := startBenchSystem(b)
	store := aas.ClientOf[string, string](sys, "Store")
	ctx := context.Background()
	if _, err := store.Untyped().Call(ctx, "put", "k", "v"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Call(ctx, "get", "k"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTypedClientCallParallel is the typed platform edge under
// concurrent callers sharing one handle (and its envelope pool).
func BenchmarkTypedClientCallParallel(b *testing.B) {
	sys, _ := startBenchSystem(b)
	store := aas.ClientOf[string, string](sys, "Store")
	ctx := context.Background()
	if _, err := store.Untyped().Call(ctx, "put", "k", "v"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := store.Call(ctx, "get", "k"); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkTypedClientAsync is the asynchronous typed shape; futures are
// freshly allocated per call (never pooled), so compare allocations against
// BenchmarkClientAsyncFanout, not the synchronous typed path.
func BenchmarkTypedClientAsync(b *testing.B) {
	const fanout = 16
	sys, _ := startBenchSystem(b)
	store := aas.ClientOf[string, string](sys, "Store")
	ctx := context.Background()
	if _, err := store.Untyped().Call(ctx, "put", "k", "v"); err != nil {
		b.Fatal(err)
	}
	futures := make([]*aas.TypedFuture[string, string], fanout)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += fanout {
		for j := range futures {
			futures[j] = store.Async(ctx, "get", "k")
		}
		for _, f := range futures {
			if _, err := f.Wait(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkClientAsyncFanout issues fan-out batches through one handle and
// gathers them with Future.Wait; per-op cost is one call of the batch, so
// compare against BenchmarkClientCall for the win of overlapping the waits.
func BenchmarkClientAsyncFanout(b *testing.B) {
	const fanout = 16
	sys, _ := startBenchSystem(b)
	store := sys.Client("Store")
	ctx := context.Background()
	if _, err := store.Call(ctx, "put", "k", "v"); err != nil {
		b.Fatal(err)
	}
	futures := make([]*aas.Future, fanout)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += fanout {
		for j := range futures {
			futures[j] = store.Async(ctx, "get", "k")
		}
		for _, f := range futures {
			if _, err := f.Wait(); err != nil {
				b.Fatal(err)
			}
		}
	}
}
