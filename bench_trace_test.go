// Benchmarks for the telemetry plane (DESIGN.md §11): the traced call edge
// against the untraced baseline, and the unified snapshot assembly. The
// span-record micro-benchmark lives with its package
// (internal/telemetry.BenchmarkSpanRecord).
package aas_test

import (
	"context"
	"testing"

	aas "repro"
)

// BenchmarkTracedCall is BenchmarkTypedClientCall with head sampling at 1
// (every root traced): the typed hot path plus trace-id mint, span-word
// stamping, and two ring records (client edge + server). Compare with
// BenchmarkUntracedCall — the delta is the whole cost of always-on tracing.
func BenchmarkTracedCall(b *testing.B) {
	benchTraceCall(b, 0) // Options.TraceSampling 0 = default rate 1
}

// BenchmarkUntracedCall is the same path with sampling off: one atomic load
// decides no, and nothing else happens.
func BenchmarkUntracedCall(b *testing.B) {
	benchTraceCall(b, -1)
}

func benchTraceCall(b *testing.B, sampling int) {
	reg := aas.NewRegistry()
	reg.MustRegister("Greeter", "1.0", nil, func() any { return &typedGreeter{Greeting: "Hello"} })
	sys, err := aas.Load(greeterADL, aas.Options{Registry: reg.Registry, TraceSampling: sampling})
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		b.Fatal(err)
	}
	defer sys.Stop()
	ctx := context.Background()
	g := aas.ClientOf[string, string](sys, "Greeter")
	if _, err := g.Call(ctx, "greet", "world"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Call(ctx, "greet", "world"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshot assembles the unified telemetry snapshot of a running
// system — the cost one /metrics scrape puts on a node.
func BenchmarkSnapshot(b *testing.B) {
	sys, _ := startBenchSystem(b)
	store := sys.Client("Store")
	ctx := context.Background()
	if _, err := store.Call(ctx, "put", "k", "v"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := sys.Telemetry()
		if snap.Schema == 0 {
			b.Fatal("empty snapshot")
		}
	}
}
