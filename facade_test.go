package aas_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	aas "repro"
)

// greeter is a minimal public-API component.
type greeter struct {
	mu       sync.Mutex
	Greeting string
}

func (g *greeter) Handle(op string, args []any) ([]any, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	switch op {
	case "greet":
		return []any{g.Greeting + ", " + args[0].(string) + "!"}, nil
	case "setGreeting":
		g.Greeting = args[0].(string)
		return []any{"ok"}, nil
	default:
		return nil, fmt.Errorf("greeter: unknown op %s", op)
	}
}

const greeterADL = `
system Hello {
  component Greeter {
    provide greet(name) -> (message)
    provide setGreeting(text) -> (status)
  }
}
`

func TestPublicAPIRoundTrip(t *testing.T) {
	reg := aas.NewRegistry()
	reg.MustRegister("Greeter", "1.0", nil, func() any { return &greeter{Greeting: "Hello"} })
	sys, err := aas.Load(greeterADL, aas.Options{Registry: reg.Registry})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()

	res, err := sys.Call("Greeter", "greet", "world")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != "Hello, world!" {
		t.Fatalf("res = %v", res)
	}

	m := sys.Introspect()
	if m.System != "Hello" || len(m.Components) != 1 {
		t.Fatalf("model = %+v", m)
	}
}

func TestPublicConfigHelpers(t *testing.T) {
	cfg, err := aas.ParseConfig(greeterADL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := aas.CheckConfig(cfg); err != nil {
		t.Fatal(err)
	}
	cfg2, _ := aas.ParseConfig(greeterADL)
	cfg2.Components[0].Properties["cpu"] = "4"
	plan := aas.DiffConfigs(cfg, cfg2)
	if len(plan) != 1 {
		t.Fatalf("plan = %v", plan)
	}
}

func TestPublicLoadErrors(t *testing.T) {
	if _, err := aas.Load("not adl at all", aas.Options{}); err == nil {
		t.Fatal("garbage accepted")
	}
	// Valid ADL but empty registry: assembly must fail.
	if _, err := aas.Load(greeterADL, aas.Options{}); err == nil {
		t.Fatal("missing implementations accepted")
	}
}
