package aas_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	aas "repro"

	"repro/internal/netsim"
	"repro/internal/registry"
)

// greeter is a minimal public-API component.
type greeter struct {
	mu       sync.Mutex
	Greeting string
}

func (g *greeter) Handle(op string, args []any) ([]any, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	switch op {
	case "greet":
		return []any{g.Greeting + ", " + args[0].(string) + "!"}, nil
	case "setGreeting":
		g.Greeting = args[0].(string)
		return []any{"ok"}, nil
	default:
		return nil, fmt.Errorf("greeter: unknown op %s", op)
	}
}

const greeterADL = `
system Hello {
  component Greeter {
    provide greet(name) -> (message)
    provide setGreeting(text) -> (status)
  }
}
`

func TestPublicAPIRoundTrip(t *testing.T) {
	reg := aas.NewRegistry()
	reg.MustRegister("Greeter", "1.0", nil, func() any { return &greeter{Greeting: "Hello"} })
	sys, err := aas.Load(greeterADL, aas.Options{Registry: reg.Registry})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()

	res, err := sys.Call("Greeter", "greet", "world")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != "Hello, world!" {
		t.Fatalf("res = %v", res)
	}

	m := sys.Introspect()
	if m.System != "Hello" || len(m.Components) != 1 {
		t.Fatalf("model = %+v", m)
	}
}

func TestPublicConfigHelpers(t *testing.T) {
	cfg, err := aas.ParseConfig(greeterADL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := aas.CheckConfig(cfg); err != nil {
		t.Fatal(err)
	}
	cfg2, _ := aas.ParseConfig(greeterADL)
	cfg2.Components[0].Properties["cpu"] = "4"
	plan := aas.DiffConfigs(cfg, cfg2)
	if len(plan) != 1 {
		t.Fatalf("plan = %v", plan)
	}
}

// TestClientHandleSurvivesSwap: the compiled binding handle stays valid
// across a hot swap; the next call reaches the replacement implementation
// with the transferred state.
func TestClientHandleSurvivesSwap(t *testing.T) {
	reg := aas.NewRegistry()
	reg.MustRegister("Greeter", "1.0", nil, func() any { return &greeter{Greeting: "Hello"} })
	reg.MustRegister("Greeter2", "2.0", nil, func() any { return &greeter{Greeting: "Howdy"} })
	sys, err := aas.Load(greeterADL, aas.Options{Registry: reg.Registry})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()

	ctx := context.Background()
	g := sys.Client("Greeter")
	if res, err := g.Call(ctx, "greet", "world"); err != nil || res[0] != "Hello, world!" {
		t.Fatalf("pre-swap: %v %v", res, err)
	}
	entry, err := reg.Lookup("Greeter2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.SwapImplementation("Greeter", entry, false); err != nil {
		t.Fatal(err)
	}
	if res, err := g.Call(ctx, "greet", "world"); err != nil || res[0] != "Howdy, world!" {
		t.Fatalf("post-swap through the same handle: %v %v", res, err)
	}
}

// TestClientHandleSurvivesRebind: a handle on the caller keeps working
// across a connector rebind, and its next mediated call routes to the new
// provider.
func TestClientHandleSurvivesRebind(t *testing.T) {
	const adlSrc = `
system RB {
  component Front {
    provide read(k) -> (v)
    require get(k) -> (v)
  }
  component A {
    provide get(k) -> (v)
  }
  component B {
    provide get(k) -> (v)
  }
  connector Link { kind rpc }
  bind Front.get -> A.get via Link
}
`
	reg := aas.NewRegistry()
	reg.MustRegister("Front", "1.0", nil, func() any { return &relay{} })
	reg.MustRegister("A", "1.0", nil, func() any { return tagged{"a"} })
	reg.MustRegister("B", "1.0", nil, func() any { return tagged{"b"} })
	sys, err := aas.Load(adlSrc, aas.Options{Registry: reg.Registry})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()

	ctx := context.Background()
	front := sys.Client("Front")
	if res, err := front.Call(ctx, "read", "k"); err != nil || res[0] != "a" {
		t.Fatalf("pre-rebind: %v %v", res, err)
	}
	if err := sys.Rebind("Front", "get", "B"); err != nil {
		t.Fatal(err)
	}
	if res, err := front.Call(ctx, "read", "k"); err != nil || res[0] != "b" {
		t.Fatalf("post-rebind through the same handle: %v %v", res, err)
	}
}

// TestClientHandleSurvivesMigration: a handle obtained on one cluster node
// stays valid while its component live-migrates onto that node and away
// again — calls route locally or through the gateway as appropriate, with
// the deadline still honoured.
func TestClientHandleSurvivesMigration(t *testing.T) {
	mkReg := func(string) *registry.Registry {
		reg := aas.NewRegistry()
		reg.MustRegister("Echo", "1.0", nil, func() any { return tagged{"echo"} })
		return reg.Registry
	}
	h, err := aas.StartCluster(context.Background(), aas.ClusterSpec{
		ADL: `
system Mig {
  component Echo {
    provide get(k) -> (v)
  }
}
`,
		Nodes:     []string{"n1", "n2"},
		Placement: map[string]string{"Echo": "n2"},
		Registry:  mkReg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	sys1, sys2 := h.System("n1"), h.System("n2")

	ctx := context.Background()
	echo := sys1.Client("Echo").With(aas.WithDeadline(5 * time.Second))
	if res, err := echo.Call(ctx, "get", "k"); err != nil || res[0] != "echo" {
		t.Fatalf("remote call: %v %v", res, err)
	}
	// Migrate onto the caller's node: the same handle now serves locally.
	if err := sys2.Migrate("Echo", netsim.NodeID("n1")); err != nil {
		t.Fatal(err)
	}
	if !sys1.HasComponent("Echo") {
		t.Fatal("Echo not hosted on n1 after migration")
	}
	if res, err := echo.Call(ctx, "get", "k"); err != nil || res[0] != "echo" {
		t.Fatalf("local call through the same handle: %v %v", res, err)
	}
	// And away again: back to the gateway path, still the same handle.
	if err := sys1.Migrate("Echo", netsim.NodeID("n2")); err != nil {
		t.Fatal(err)
	}
	if res, err := echo.Call(ctx, "get", "k"); err != nil || res[0] != "echo" {
		t.Fatalf("re-remoted call through the same handle: %v %v", res, err)
	}
}

// relay forwards read -> required get.
type relay struct{ caller aas.Caller }

func (r *relay) SetCaller(c aas.Caller) { r.caller = c }
func (r *relay) Handle(op string, args []any) ([]any, error) {
	return r.caller.Call("get", args...)
}

// tagged answers every get with its tag.
type tagged struct{ tag string }

func (c tagged) Handle(op string, args []any) ([]any, error) {
	return []any{c.tag}, nil
}

func TestPublicLoadErrors(t *testing.T) {
	if _, err := aas.Load("not adl at all", aas.Options{}); err == nil {
		t.Fatal("garbage accepted")
	}
	// Valid ADL but empty registry: assembly must fail.
	if _, err := aas.Load(greeterADL, aas.Options{}); err == nil {
		t.Fatal("missing implementations accepted")
	}
}
