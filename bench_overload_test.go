// Overload-path benchmarks (DESIGN.md §9): the deadline-aware admission
// check on the accept and reject sides, and the EDF mailbox lane against the
// plain FIFO ring. The reject benchmark is the headline number — a shed call
// must cost nanoseconds and allocate nothing, because shedding is exactly
// what the system does when it has no capacity to spare.
package aas_test

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	aas "repro"

	"repro/internal/bus"
)

const busyADL = `
system Overload {
  component Busy {
    provide work(x) -> (r)
    provide block(x) -> (r)
  }
}
`

// gatedComp serves work after a fixed delay and parks block calls on a gate
// channel — the fixture for wedging every serve worker at once.
type gatedComp struct {
	gate  chan struct{}
	delay time.Duration
}

func (g *gatedComp) Handle(op string, args []any) ([]any, error) {
	switch op {
	case "work":
		if g.delay > 0 {
			time.Sleep(g.delay)
		}
		return []any{"ok"}, nil
	case "block":
		<-g.gate
		return []any{"ok"}, nil
	}
	return nil, fmt.Errorf("busy: unknown op %s", op)
}

// startSaturated boots a Busy system, trains the admission estimator with
// real ~2ms service times, then wedges the serve workers on the gate and
// piles a deep deadline-less backlog behind them. The returned client
// carries a 3ms budget: estimated wait (tens of ms) dwarfs it, so every call
// through it is shed at the edge until cleanup opens the gate.
func startSaturated(tb testing.TB) (*aas.System, *aas.TypedClient[string, string], func()) {
	tb.Helper()
	comp := &gatedComp{gate: make(chan struct{}), delay: 2 * time.Millisecond}
	reg := aas.NewRegistry()
	reg.MustRegister("Busy", "1.0", nil, func() any { return comp })
	sys, err := aas.Load(busyADL, aas.Options{Registry: reg.Registry})
	if err != nil {
		tb.Fatal(err)
	}
	ctx := context.Background()
	if err := sys.Start(ctx); err != nil {
		tb.Fatal(err)
	}
	cl := aas.ClientOf[string, string](sys, "Busy")
	for i := 0; i < 32; i++ { // train the service-time EWMA
		if _, err := cl.Call(ctx, "work", "w"); err != nil {
			tb.Fatal(err)
		}
	}
	const backlog = 64
	futs := make([]*aas.TypedFuture[string, string], backlog)
	for i := range futs {
		// Deadline-less calls are never shed; they wedge the workers and
		// hold the queue depth the estimator multiplies by.
		futs[i] = cl.Async(ctx, "block", "x")
	}
	short := cl.With(aas.WithDeadline(3 * time.Millisecond))
	// Wait until the backlog registers and budgeted calls actually shed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := short.Call(ctx, "work", "x"); errors.Is(err, aas.ErrOverloaded) {
			break
		}
		if time.Now().After(deadline) {
			tb.Fatal("system never reached overload rejection")
		}
		time.Sleep(time.Millisecond)
	}
	cleanup := func() {
		close(comp.gate)
		for _, f := range futs {
			_, _ = f.Wait()
		}
		sys.Stop()
	}
	return sys, short, cleanup
}

// BenchmarkAdmissionReject measures a shed call end to end through the
// typed client: queueing-delay estimate against the remaining budget, fail
// fast with ErrOverloaded — no envelope lease, no waiter slot, no timer.
func BenchmarkAdmissionReject(b *testing.B) {
	_, short, cleanup := startSaturated(b)
	defer cleanup()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := short.Call(ctx, "work", "x"); !errors.Is(err, aas.ErrOverloaded) {
				b.Errorf("err = %v, want ErrOverloaded", err)
				return
			}
		}
	})
}

// BenchmarkAdmissionAccept measures the admitted side: an idle system where
// every deadline-budgeted call passes the admission check and completes, so
// the check's cost rides on top of the normal typed call path.
func BenchmarkAdmissionAccept(b *testing.B) {
	comp := &gatedComp{gate: make(chan struct{})} // zero delay
	reg := aas.NewRegistry()
	reg.MustRegister("Busy", "1.0", nil, func() any { return comp })
	sys, err := aas.Load(busyADL, aas.Options{Registry: reg.Registry})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if err := sys.Start(ctx); err != nil {
		b.Fatal(err)
	}
	defer sys.Stop()
	g := aas.ClientOf[string, string](sys, "Busy").With(aas.WithDeadline(time.Second))
	for i := 0; i < 64; i++ {
		if _, err := g.Call(ctx, "work", "w"); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := g.Call(ctx, "work", "w"); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkEDFMailboxParallel measures the deadline lane with no cross-
// worker contention: every worker owns a distinct endpoint and each
// deadlined request takes the heap path on both enqueue and dequeue.
func BenchmarkEDFMailboxParallel(b *testing.B) {
	bb := bus.New()
	dl := time.Now().Add(time.Hour).UnixNano()
	var id atomic.Uint64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		n := id.Add(1)
		dst := bus.Address(fmt.Sprintf("dst-%d", n))
		ep, err := bb.Attach(dst, 4096)
		if err != nil {
			b.Error(err)
			return
		}
		m := bus.Message{Kind: bus.Request, Op: "r",
			Src: bus.Address(fmt.Sprintf("src-%d", n)), Dst: dst, Deadline: dl}
		for pb.Next() {
			if err := bb.Send(m); err != nil {
				b.Error(err)
				return
			}
			if _, ok := ep.TryReceive(); !ok {
				b.Error("message lost")
				return
			}
		}
	})
}

// BenchmarkEDFMailboxSharedDst hammers one destination from every worker —
// the per-address ordering lock plus the heap under it are the ceiling.
func BenchmarkEDFMailboxSharedDst(b *testing.B) {
	bb := bus.New()
	ep, err := bb.Attach("hot", 1<<16)
	if err != nil {
		b.Fatal(err)
	}
	dl := time.Now().Add(time.Hour).UnixNano()
	var id atomic.Uint64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		src := bus.Address(fmt.Sprintf("src-%d", id.Add(1)))
		m := bus.Message{Kind: bus.Request, Op: "r", Src: src, Dst: "hot", Deadline: dl}
		for pb.Next() {
			if err := bb.Send(m); err != nil {
				b.Error(err)
				return
			}
			if _, ok := ep.TryReceive(); !ok {
				b.Error("message lost")
				return
			}
		}
	})
}
