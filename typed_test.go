// Tests for the typed client-handle surface (DESIGN.md §8): codec
// derivation, the in-place serving fast path, fallback to untyped Handle,
// survival across hot swaps and live migration, aspect pipelines still
// applying, typed error kinds, and the Oneway no-such-component regression.
package aas_test

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	aas "repro"

	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/wire"
)

// kvPut is a struct request carrying its own codec (core.TypedRequest):
// AppendArgs preencodes the two-string argument list in wire.AppendValues
// form, CallArgs materializes the legacy boxed form.
type kvPut struct{ Key, Val string }

func (p *kvPut) AppendArgs(dst []byte) ([]byte, error) {
	dst = binary.AppendUvarint(dst, 2)
	dst, err := wire.AppendValue(dst, p.Key)
	if err != nil {
		return nil, err
	}
	return wire.AppendValue(dst, p.Val)
}

func (p *kvPut) CallArgs() []any { return []any{p.Key, p.Val} }

// typedGreeter implements both Handle and HandleTyped; ops not served typed
// fall back through ErrUntypedOp.
type typedGreeter struct{ Greeting string }

func (g *typedGreeter) Handle(op string, args []any) ([]any, error) {
	switch op {
	case "greet":
		return []any{g.Greeting + ", " + args[0].(string) + "!"}, nil
	case "setGreeting":
		g.Greeting = args[0].(string)
		return []any{"ok"}, nil
	}
	return nil, fmt.Errorf("greeter: unknown op %s", op)
}

func (g *typedGreeter) HandleTyped(op string, req, resp any) error {
	if op != "greet" {
		return aas.ErrUntypedOp // setGreeting served via the untyped path
	}
	*resp.(*string) = g.Greeting + ", " + *req.(*string) + "!"
	return nil
}

func startTypedGreeter(t *testing.T, greeting string) (*aas.System, *aas.Registry) {
	t.Helper()
	reg := aas.NewRegistry()
	reg.MustRegister("Greeter", "1.0", nil, func() any { return &typedGreeter{Greeting: greeting} })
	sys, err := aas.Load(greeterADL, aas.Options{Registry: reg.Registry})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Stop)
	return sys, reg
}

// TestTypedScalarCall: the scalar-derived codec round trip through the
// in-place serving path, plus the untyped handle still working beside it.
func TestTypedScalarCall(t *testing.T) {
	sys, _ := startTypedGreeter(t, "Hello")
	ctx := context.Background()
	g := aas.ClientOf[string, string](sys, "Greeter")
	for i := 0; i < 3; i++ { // repeat: envelopes recycle through the pool
		out, err := g.Call(ctx, "greet", "world")
		if err != nil || out != "Hello, world!" {
			t.Fatalf("typed call %d: %q %v", i, out, err)
		}
	}
	if res, err := g.Untyped().Call(ctx, "greet", "world"); err != nil || res[0] != "Hello, world!" {
		t.Fatalf("untyped sibling call: %v %v", res, err)
	}
}

// TestTypedFallbackToHandle: a typed call whose op the component does not
// serve typed (HandleTyped returns ErrUntypedOp) transparently falls back to
// Handle, with results decoded through the codec; and a component with no
// HandleTyped at all serves typed handles the same way.
func TestTypedFallbackToHandle(t *testing.T) {
	sys, _ := startTypedGreeter(t, "Hello")
	ctx := context.Background()
	set := aas.ClientOf[string, string](sys, "Greeter")
	if out, err := set.Call(ctx, "setGreeting", "Howdy"); err != nil || out != "ok" {
		t.Fatalf("fallback call: %q %v", out, err)
	}
	if out, err := set.Call(ctx, "greet", "world"); err != nil || out != "Howdy, world!" {
		t.Fatalf("typed call after fallback mutation: %q %v", out, err)
	}

	// Component without HandleTyped: plain greeter from facade_test.go.
	reg := aas.NewRegistry()
	reg.MustRegister("Greeter", "1.0", nil, func() any { return &greeter{Greeting: "Hi"} })
	sys2, err := aas.Load(greeterADL, aas.Options{Registry: reg.Registry})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys2.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer sys2.Stop()
	g := aas.ClientOf[string, string](sys2, "Greeter")
	if out, err := g.Call(ctx, "greet", "world"); err != nil || out != "Hi, world!" {
		t.Fatalf("untyped component via typed handle: %q %v", out, err)
	}
}

// TestTypedStructRequest: a core.TypedRequest implementor as the request
// type, served in place by benchKV.HandleTyped.
func TestTypedStructRequest(t *testing.T) {
	sys, _ := startTestBenchSystem(t)
	ctx := context.Background()
	put := aas.ClientOf[kvPut, string](sys, "Store")
	get := aas.ClientOf[string, string](sys, "Store")
	if out, err := put.Call(ctx, "put", kvPut{Key: "city", Val: "Enschede"}); err != nil || out != "ok" {
		t.Fatalf("typed put: %q %v", out, err)
	}
	if out, err := get.Call(ctx, "get", "city"); err != nil || out != "Enschede" {
		t.Fatalf("typed get: %q %v", out, err)
	}
}

func startTestBenchSystem(t *testing.T) (*aas.System, *aas.Registry) {
	t.Helper()
	reg := aas.NewRegistry()
	reg.MustRegister("Store", "1.0", nil, func() any { return newBenchKV(4) })
	sys, err := aas.Load(`
system Bench {
  component Store {
    provide get(key) -> (value)
    provide put(key, value) -> (status)
    property statefulness = "stateful"
  }
}
`, aas.Options{Registry: reg.Registry})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Stop)
	return sys, reg
}

// TestTypedAsync: asynchronous typed fan-out resolves every future with the
// right value, and Wait is repeatable.
func TestTypedAsync(t *testing.T) {
	sys, _ := startTypedGreeter(t, "Hello")
	ctx := context.Background()
	g := aas.ClientOf[string, string](sys, "Greeter")
	futures := make([]*aas.TypedFuture[string, string], 8)
	for i := range futures {
		futures[i] = g.Async(ctx, "greet", fmt.Sprintf("w%d", i))
	}
	for i, f := range futures {
		out, err := f.Wait()
		if err != nil || out != fmt.Sprintf("Hello, w%d!", i) {
			t.Fatalf("future %d: %q %v", i, out, err)
		}
		if again, err := f.Wait(); err != nil || again != out {
			t.Fatalf("repeat Wait %d: %q %v", i, again, err)
		}
	}
}

// TestTypedHandleSurvivesSwap: the typed handle shares the COW binding, so a
// hot swap is visible on the very next typed call through the same handle.
func TestTypedHandleSurvivesSwap(t *testing.T) {
	sys, reg := startTypedGreeter(t, "Hello")
	reg.MustRegister("Greeter2", "2.0", nil, func() any { return &typedGreeter{Greeting: "Howdy"} })
	ctx := context.Background()
	g := aas.ClientOf[string, string](sys, "Greeter")
	if out, err := g.Call(ctx, "greet", "world"); err != nil || out != "Hello, world!" {
		t.Fatalf("pre-swap: %q %v", out, err)
	}
	entry, err := reg.Lookup("Greeter2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.SwapImplementation("Greeter", entry, false); err != nil {
		t.Fatal(err)
	}
	if out, err := g.Call(ctx, "greet", "world"); err != nil || out != "Howdy, world!" {
		t.Fatalf("post-swap through the same typed handle: %q %v", out, err)
	}
}

// TestTypedAspectApplies: the aspect pipeline wraps typed calls exactly as
// untyped ones — an Around observes the invocation, an After replacing the
// results forces the typed caller through the codec decode path.
func TestTypedAspectApplies(t *testing.T) {
	sys, _ := startTypedGreeter(t, "Hello")
	ctx := context.Background()
	g := aas.ClientOf[string, string](sys, "Greeter")

	var seen atomic.Int64
	err := sys.AttachAspect(aas.Aspect{Name: "watch", Advice: []aas.Advice{{
		Pointcut: aas.Pointcut{Component: "Greeter", Op: "greet"},
		After: func(inv *aas.Invocation, res any, err error) (any, error) {
			seen.Add(1)
			return []any{"intercepted"}, err
		},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.Call(ctx, "greet", "world")
	if err != nil || out != "intercepted" {
		t.Fatalf("aspect-replaced typed result: %q %v", out, err)
	}
	if seen.Load() == 0 {
		t.Fatal("aspect did not fire on typed call")
	}
	if err := sys.RemoveAspect("watch"); err != nil {
		t.Fatal(err)
	}
	if out, err := g.Call(ctx, "greet", "world"); err != nil || out != "Hello, world!" {
		t.Fatalf("after aspect removal: %q %v", out, err)
	}
}

// TestTypedDeadlineErrorIs: a typed call that times out matches
// context.DeadlineExceeded through errors.Is — no string inspection.
func TestTypedDeadlineErrorIs(t *testing.T) {
	reg := aas.NewRegistry()
	reg.MustRegister("Slow", "1.0", nil, func() any { return slowEcho{} })
	sys, err := aas.Load(`
system SlowSys {
  component Slow {
    provide get(k) -> (v)
  }
}
`, aas.Options{Registry: reg.Registry})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	g := aas.ClientOf[string, string](sys, "Slow")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err = g.Call(ctx, "get", "k")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want errors.Is DeadlineExceeded, got %v", err)
	}
}

type slowEcho struct{}

func (slowEcho) Handle(op string, args []any) ([]any, error) {
	time.Sleep(300 * time.Millisecond)
	return []any{args[0]}, nil
}

// TestOnewayNoSuchComponent is the regression for the silently-dropped
// Oneway: once the component is gone, Oneway reports ErrNoSuchComponent
// instead of pretending the send landed.
func TestOnewayNoSuchComponent(t *testing.T) {
	sys, _ := startTypedGreeter(t, "Hello")
	ctx := context.Background()
	g := sys.Client("Greeter")
	if err := g.Oneway(ctx, "setGreeting", "Howdy"); err != nil {
		t.Fatalf("live oneway: %v", err)
	}
	if err := sys.EvictComponent("Greeter"); err != nil {
		t.Fatal(err)
	}
	err := g.Oneway(ctx, "setGreeting", "Hey")
	if !errors.Is(err, aas.ErrNoSuchComponent) {
		t.Fatalf("want ErrNoSuchComponent after removal, got %v", err)
	}
	// The typed sibling reports the same way.
	tg := aas.ClientOf[string, string](sys, "Greeter")
	if _, err := tg.Call(ctx, "greet", "world"); !errors.Is(err, aas.ErrNoSuchComponent) {
		t.Fatalf("typed call after removal: %v", err)
	}
}

// TestTypedHandleSurvivesMigration: typed calls from a gateway node route
// over the batched peer link (preencoded RawArgs), keep working when the
// component migrates onto the caller's node (in-place serving), and again
// when it migrates away.
func TestTypedHandleSurvivesMigration(t *testing.T) {
	mkReg := func(string) *registry.Registry {
		reg := aas.NewRegistry()
		reg.MustRegister("Store", "1.0", nil, func() any { return newBenchKV(0) })
		return reg.Registry
	}
	h, err := aas.StartCluster(context.Background(), aas.ClusterSpec{
		ADL: `
system Mig {
  component Store {
    provide get(key) -> (value)
    provide put(key, value) -> (status)
    property statefulness = "stateful"
  }
}
`,
		Nodes:     []string{"n1", "n2"},
		Placement: map[string]string{"Store": "n2"},
		Registry:  mkReg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	sys1, sys2 := h.System("n1"), h.System("n2")

	ctx := context.Background()
	put := aas.ClientOf[kvPut, string](sys1, "Store").With(aas.WithDeadline(5 * time.Second))
	get := aas.ClientOf[string, string](sys1, "Store").With(aas.WithDeadline(5 * time.Second))
	if out, err := put.Call(ctx, "put", kvPut{Key: "k", Val: "v1"}); err != nil || out != "ok" {
		t.Fatalf("remote typed put: %q %v", out, err)
	}
	if out, err := get.Call(ctx, "get", "k"); err != nil || out != "v1" {
		t.Fatalf("remote typed get: %q %v", out, err)
	}
	// Migrate onto the caller's node: same handles, now served in place.
	if err := sys2.Migrate("Store", netsim.NodeID("n1")); err != nil {
		t.Fatal(err)
	}
	if out, err := get.Call(ctx, "get", "k"); err != nil || out != "v1" {
		t.Fatalf("local typed get after migration: %q %v", out, err)
	}
	// And away again: back over the wire, state intact.
	if err := sys1.Migrate("Store", netsim.NodeID("n2")); err != nil {
		t.Fatal(err)
	}
	if out, err := get.Call(ctx, "get", "k"); err != nil || out != "v1" {
		t.Fatalf("re-remoted typed get: %q %v", out, err)
	}
	if wr, fr := h.Node("n1").BatchStats(); wr == 0 || fr < wr {
		t.Fatalf("batched link saw no writes: writes=%d frames=%d", wr, fr)
	}
}
