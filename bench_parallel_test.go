// Parallel benchmarks for the sharded software-bus data plane (E13) and the
// sharded observation plane / region-scoped reconfiguration (E14): raw Send
// throughput across GOMAXPROCS, connector-mediated calls, System.Call
// fan-out, QoS recording and event emission from parallel workers, a mixed
// workload that keeps reconfiguring (pause / redirect / resume) while
// traffic flows, and traffic through an untouched region while a disjoint
// region reconfigures. Run with -cpu=1,2,4 to see scaling.
package aas_test

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	aas "repro"

	"repro/internal/adl"
	"repro/internal/aspects"
	"repro/internal/bus"
	"repro/internal/clock"
	"repro/internal/connector"
	"repro/internal/core"
	"repro/internal/filters"
	"repro/internal/qos"
)

// BenchmarkBusParallelSend measures the raw data plane: every worker owns a
// distinct (src, dst) pair, so all contention left is the bus's own shared
// state — the single global mutex before the refactor, sharded routes after.
func BenchmarkBusParallelSend(b *testing.B) {
	bb := bus.New()
	var id atomic.Uint64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		n := id.Add(1)
		dst := bus.Address(fmt.Sprintf("dst-%d", n))
		ep, err := bb.Attach(dst, 4096)
		if err != nil {
			b.Error(err)
			return
		}
		m := bus.Message{Kind: bus.Event, Op: "tick",
			Src: bus.Address(fmt.Sprintf("src-%d", n)), Dst: dst}
		for pb.Next() {
			if err := bb.Send(m); err != nil {
				b.Error(err)
				return
			}
			if _, ok := ep.TryReceive(); !ok {
				b.Error("message lost")
				return
			}
		}
	})
}

// BenchmarkBusParallelSendSharedDst is the worst case for sharding: every
// worker hammers the same destination, so the per-address ordering lock is
// the ceiling.
func BenchmarkBusParallelSendSharedDst(b *testing.B) {
	bb := bus.New()
	ep, err := bb.Attach("hot", 1<<16)
	if err != nil {
		b.Fatal(err)
	}
	var id atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		src := bus.Address(fmt.Sprintf("src-%d", id.Add(1)))
		m := bus.Message{Kind: bus.Event, Op: "tick", Src: src, Dst: "hot"}
		for pb.Next() {
			if err := bb.Send(m); err != nil {
				b.Error(err)
				return
			}
			if _, ok := ep.TryReceive(); !ok {
				b.Error("message lost")
				return
			}
		}
	})
}

// BenchmarkConnectorParallelCall drives full connector-mediated round trips
// (client -> connector -> echo server -> client) from parallel clients.
func BenchmarkConnectorParallelCall(b *testing.B) {
	bb := bus.New()
	srv, err := bb.Attach("srv", 1<<14)
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			m, err := srv.Receive(ctx)
			if err != nil {
				return
			}
			_ = bb.Send(bus.Message{Kind: bus.Reply, Op: m.Op,
				Payload: connector.ReplyPayload{Results: []any{"v"}},
				Src:     "srv", Dst: m.Src, Corr: m.Corr})
		}
	}()
	conn, err := connector.New("cpar", adl.KindRPC, bb, []bus.Address{"srv"})
	if err != nil {
		b.Fatal(err)
	}
	conn.Start(ctx)
	defer func() {
		cancel()
		conn.Stop()
		<-done
	}()
	target := connector.Address("cpar")

	var id atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		cli, err := bb.Attach(bus.Address(fmt.Sprintf("cli-%d", id.Add(1))), 1<<12)
		if err != nil {
			b.Error(err)
			return
		}
		var corr uint64
		for pb.Next() {
			corr++
			if err := bb.Send(bus.Message{Kind: bus.Request, Op: "get",
				Payload: connector.CallPayload{Args: []any{"k"}},
				Src:     cli.Addr(), Dst: target, Corr: corr}); err != nil {
				b.Error(err)
				return
			}
			for {
				m, err := cli.Receive(ctx)
				if err != nil {
					b.Error(err)
					return
				}
				if m.Kind == bus.Reply && m.Corr == corr {
					break
				}
			}
		}
	})
}

// BenchmarkSystemCallParallel measures the platform edge: concurrent user
// requests entering through System.Call and fanning out over the bus.
func BenchmarkSystemCallParallel(b *testing.B) {
	sys, _ := startBenchSystem(b)
	if _, err := sys.Call("Store", "put", "k", "v"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := sys.Call("Store", "get", "k"); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkSystemCallParallelDistinctComps is the call-path analogue of
// BenchmarkBusParallelSend: every worker owns its own target component, so
// any remaining contention is shared call-path state — System.mu and the
// client correlation mutex before the refactor, atomic snapshots and a
// sharded waiter table after. A single shared component (see
// BenchmarkSystemCallParallel) is bounded by its one mailbox and serve
// loop; distinct components must scale with GOMAXPROCS.
func BenchmarkSystemCallParallelDistinctComps(b *testing.B) {
	const comps = 8
	reg := aas.NewRegistry()
	src := "system Many {\n"
	for i := 0; i < comps; i++ {
		name := fmt.Sprintf("Store%d", i)
		reg.MustRegister(name, "1.0", nil, func() any { return newBenchKV(64) })
		src += "  component " + name + " {\n    provide get(key) -> (value)\n    provide put(key, value) -> (status)\n  }\n"
	}
	src += "}\n"
	sys, err := aas.Load(src, aas.Options{Registry: reg.Registry})
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(sys.Stop)
	for i := 0; i < comps; i++ {
		if _, err := sys.Call(fmt.Sprintf("Store%d", i), "put", "k", "v"); err != nil {
			b.Fatal(err)
		}
	}
	var id atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		target := fmt.Sprintf("Store%d", id.Add(1)%comps)
		for pb.Next() {
			if _, err := sys.Call(target, "get", "k"); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkMonitorRecordParallel measures the observation data plane: every
// served request records latency and throughput samples, so Record must be
// lock-free and allocation-free. Before the sharded-ring refactor this was
// a global mutex plus a slice append/trim per sample.
func BenchmarkMonitorRecordParallel(b *testing.B) {
	m := qos.NewMonitor(clock.Real{}, 10*time.Second, 1<<14)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.Record(qos.Latency, 0.001)
		}
	})
}

// BenchmarkEventHubEmitParallel measures RAML stream emission from parallel
// serve loops with one (fast) subscriber attached — copy-on-write
// subscriber snapshot plus striped history vs the former global mutex.
func BenchmarkEventHubEmitParallel(b *testing.B) {
	h := core.NewEventHub(1024)
	ch, cancel := h.Subscribe(1 << 16)
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range ch {
		}
	}()
	e := core.Event{Kind: core.EvRequestServed, Component: "c", Detail: "op"}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Emit(e)
		}
	})
	cancel()
	<-done
}

// benchFront forwards every fetch through its required get service.
type benchFront struct{ caller aas.Caller }

func (f *benchFront) SetCaller(c aas.Caller) { f.caller = c }

func (f *benchFront) Handle(op string, args []any) ([]any, error) {
	if op != "fetch" {
		return nil, fmt.Errorf("benchFront: unknown op %s", op)
	}
	return f.caller.Call("get", args...)
}

// dualADL is two disjoint chains; the reconfiguration benchmark hammers
// chain A while chain B is repeatedly reconfigured.
const dualADL = `
system Dual {
  component FrontA {
    provide fetch(key) -> (value)
    require get(key) -> (value)
  }
  component StoreA {
    provide get(key) -> (value)
    provide put(key, value) -> (status)
  }
  component StoreB {
    provide get(key) -> (value)
    provide put(key, value) -> (status)
  }
  connector LinkA { kind rpc }
  bind FrontA.get -> StoreA.get via LinkA
}
`

// BenchmarkRegionReconfigDisjointTraffic measures E14 at micro scale: the
// per-call latency of traffic through an untouched region (FrontA->StoreA)
// while a disjoint region (StoreB) is continuously mid-Reconfigure. Compare
// with BenchmarkSystemCallParallel for the undisturbed baseline.
func BenchmarkRegionReconfigDisjointTraffic(b *testing.B) {
	reg := aas.NewRegistry()
	reg.MustRegister("FrontA", "1.0", nil, func() any { return &benchFront{} })
	reg.MustRegister("StoreA", "1.0", nil, func() any { return newBenchKV(64) })
	reg.MustRegister("StoreB", "1.0", nil, func() any { return newBenchKV(64) })
	sys, err := aas.Load(dualADL, aas.Options{Registry: reg.Registry})
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(sys.Stop)
	if _, err := sys.Call("StoreA", "put", "k", "v"); err != nil {
		b.Fatal(err)
	}

	cfgB, err := adl.Parse(strings.Replace(dualADL, "component StoreB {",
		"component StoreB {\n    property tier = \"v2\"", 1))
	if err != nil {
		b.Fatal(err)
	}
	cfgA, err := adl.Parse(dualADL)
	if err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	churnDone := make(chan struct{})
	var reconfigs atomic.Uint64
	go func() {
		defer close(churnDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			cfg := cfgB
			if i%2 == 1 {
				cfg = cfgA
			}
			if _, err := sys.Reconfigure(cfg); err != nil {
				b.Error(err)
				return
			}
			reconfigs.Add(1)
		}
	}()

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := sys.Call("FrontA", "fetch", "k"); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	close(stop)
	<-churnDone
	b.ReportMetric(float64(reconfigs.Load()), "reconfigs")
}

// BenchmarkBusMixedReconfigUnderLoad keeps the control plane busy while the
// data plane streams: each worker periodically pauses its destination (so
// traffic is parked), installs and removes a redirect rule, resumes (so the
// parked run is flushed in order), and verifies nothing was lost.
func BenchmarkBusMixedReconfigUnderLoad(b *testing.B) {
	bb := bus.New()
	var id atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		n := id.Add(1)
		dst := bus.Address(fmt.Sprintf("mix-dst-%d", n))
		alias := bus.Address(fmt.Sprintf("mix-alias-%d", n))
		ep, err := bb.Attach(dst, 1<<14)
		if err != nil {
			b.Error(err)
			return
		}
		m := bus.Message{Kind: bus.Event, Op: "tick",
			Src: bus.Address(fmt.Sprintf("mix-src-%d", n)), Dst: dst}
		var i, sent, recv uint64
		for pb.Next() {
			i++
			switch {
			case i%512 == 0:
				bb.Pause(dst)
				if err := bb.Send(m); err != nil { // parked on the paused channel
					b.Error(err)
					return
				}
				sent++
				if err := bb.Redirect(alias, dst); err != nil {
					b.Error(err)
					return
				}
				via := m
				via.Dst = alias // exercises redirect resolution
				if err := bb.Send(via); err != nil {
					b.Error(err)
					return
				}
				sent++
				if err := bb.Redirect(alias, ""); err != nil {
					b.Error(err)
					return
				}
				if _, err := bb.Resume(dst); err != nil {
					b.Error(err)
					return
				}
			default:
				if err := bb.Send(m); err != nil {
					b.Error(err)
					return
				}
				sent++
			}
			if i%256 == 0 {
				for {
					if _, ok := ep.TryReceive(); !ok {
						break
					}
					recv++
				}
			}
		}
		for {
			m, ok := ep.TryReceive()
			if !ok {
				break
			}
			_ = m
			recv++
		}
		if recv != sent {
			b.Errorf("lost traffic during reconfiguration: sent=%d received=%d", sent, recv)
		}
	})
}

// ---- Adaptation-pipeline benchmarks (compiled per-binding pipelines) ----
//
// These back the acceptance criterion that a connector-mediated call with
// >=2 filters and >=2 aspects attached takes no lock and performs zero
// allocations inside the filter/aspect evaluation stages.

// BenchmarkFilterEvalParallel measures the filter stage alone: a chain of
// four filters (two glob matchers, two literal) evaluated from parallel
// workers. Before the compiled-pipeline refactor every Eval took the set's
// RWMutex and re-parsed each glob with path.Match; after, it is one atomic
// snapshot load over precompiled matchers.
func BenchmarkFilterEvalParallel(b *testing.B) {
	var sink atomic.Uint64
	var set filters.Set
	for _, f := range []filters.Filter{
		filters.Transform{FilterName: "glob1",
			Match: filters.Matcher{Op: "get*"}, Fn: func(*bus.Message) { sink.Add(1) }},
		filters.Transform{FilterName: "glob2",
			Match: filters.Matcher{Op: "g?t*", Src: "cli*"}, Fn: func(*bus.Message) { sink.Add(1) }},
		filters.Transform{FilterName: "lit",
			Match: filters.Matcher{Op: "get"}, Fn: func(*bus.Message) { sink.Add(1) }},
		filters.Transform{FilterName: "any",
			Fn: func(*bus.Message) { sink.Add(1) }},
	} {
		if err := set.Attach(filters.Input, f); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		m := &bus.Message{Kind: bus.Request, Op: "get", Src: "cli-1"}
		for pb.Next() {
			if r := set.Eval(filters.Input, m); r.Outcome != filters.Delivered {
				b.Error("unexpected outcome")
				return
			}
		}
	})
}

// BenchmarkAspectWovenInvokeParallel measures the aspect stage alone: a
// handler woven with two enabled aspects (glob pointcuts) invoked from
// parallel workers. Before the refactor every invocation resolved matching
// advice under the weaver's RWMutex and allocated the advice slice plus one
// closure per chain link; after, the chain is fused at interchange time.
func BenchmarkAspectWovenInvokeParallel(b *testing.B) {
	w := aspects.NewWeaver()
	var sink atomic.Uint64
	if err := w.Attach(aspects.Aspect{Name: "audit", Advice: []aspects.Advice{{
		Pointcut: aspects.Pointcut{Component: "Store*", Op: "get*"},
		Before:   func(*aspects.Invocation) error { sink.Add(1); return nil },
	}}}); err != nil {
		b.Fatal(err)
	}
	if err := w.Attach(aspects.Aspect{Name: "shape", Advice: []aspects.Advice{{
		Pointcut: aspects.Pointcut{Op: "*"},
		After: func(_ *aspects.Invocation, res any, err error) (any, error) {
			sink.Add(1)
			return res, err
		},
	}}}); err != nil {
		b.Fatal(err)
	}
	h := w.Weave(func(inv *aspects.Invocation) (any, error) { return inv.Args, nil })
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		inv := &aspects.Invocation{Component: "Store1", Op: "get", Args: 7}
		for pb.Next() {
			if _, err := h(inv); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// pipelineADL is one mediated chain used by the full-path pipeline
// benchmarks: Front.fetch -> (connector Link) -> Store.get.
const pipelineADL = `
system Pipe {
  component Front {
    provide fetch(key) -> (value)
    require get(key) -> (value)
  }
  component Store {
    provide get(key) -> (value)
    provide put(key, value) -> (status)
  }
  connector Link { kind rpc }
  bind Front.get -> Store.get via Link
}
`

func startPipelineSystem(b *testing.B) *aas.System {
	b.Helper()
	reg := aas.NewRegistry()
	reg.MustRegister("Front", "1.0", nil, func() any { return &benchFront{} })
	reg.MustRegister("Store", "1.0", nil, func() any { return newBenchKV(64) })
	sys, err := aas.Load(pipelineADL, aas.Options{Registry: reg.Registry})
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(sys.Stop)
	if _, err := sys.Call("Store", "put", "k", "v"); err != nil {
		b.Fatal(err)
	}
	return sys
}

// attachPipeline loads the mediated chain with two input filters (one glob,
// one literal matcher) on the connector and two aspects on the weaver — the
// acceptance-criterion configuration.
func attachPipeline(b *testing.B, sys *aas.System) {
	b.Helper()
	conn, err := sys.Connector("Front", "get")
	if err != nil {
		b.Fatal(err)
	}
	var sink atomic.Uint64
	if err := conn.Filters().Attach(filters.Input, filters.Transform{FilterName: "tag",
		Match: filters.Matcher{Op: "g*"}, Fn: func(*bus.Message) { sink.Add(1) }}); err != nil {
		b.Fatal(err)
	}
	if err := conn.Filters().Attach(filters.Input, filters.Transform{FilterName: "count",
		Match: filters.Matcher{Op: "get"}, Fn: func(*bus.Message) { sink.Add(1) }}); err != nil {
		b.Fatal(err)
	}
	if err := sys.Weaver().Attach(aspects.Aspect{Name: "audit", Advice: []aspects.Advice{{
		Pointcut: aspects.Pointcut{Component: "Store*", Op: "get*"},
		Before:   func(*aspects.Invocation) error { sink.Add(1); return nil },
	}}}); err != nil {
		b.Fatal(err)
	}
	if err := sys.Weaver().Attach(aspects.Aspect{Name: "shape", Advice: []aspects.Advice{{
		Pointcut: aspects.Pointcut{Op: "*"},
		After: func(_ *aspects.Invocation, res any, err error) (any, error) {
			sink.Add(1)
			return res, err
		},
	}}}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPipelineCallParallel drives the full adaptation hot path in
// parallel: external call -> connector (2 filters) -> component woven with 2
// aspects -> reply. Compare with BenchmarkPipelineCallBare for the overhead
// of the loaded pipeline.
func BenchmarkPipelineCallParallel(b *testing.B) {
	sys := startPipelineSystem(b)
	attachPipeline(b, sys)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := sys.Call("Front", "fetch", "k"); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkPipelineCallBare is the same mediated chain with no filters and
// no aspects attached — the empty-pipeline baseline.
func BenchmarkPipelineCallBare(b *testing.B) {
	sys := startPipelineSystem(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := sys.Call("Front", "fetch", "k"); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkPipelineInterchangeUnderLoad keeps the adaptation control plane
// busy while the data plane serves: a churn goroutine toggles one aspect and
// swaps one connector filter in a loop (each toggle recompiles and atomically
// republishes the affected pipelines) while parallel callers drive the
// mediated chain. The reported reconfigs metric counts completed interchange
// cycles.
func BenchmarkPipelineInterchangeUnderLoad(b *testing.B) {
	sys := startPipelineSystem(b)
	attachPipeline(b, sys)
	conn, err := sys.Connector("Front", "get")
	if err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	churnDone := make(chan struct{})
	var cycles atomic.Uint64
	go func() {
		defer close(churnDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := sys.Weaver().SetEnabled("audit", false); err != nil {
				b.Error(err)
				return
			}
			if err := sys.Weaver().SetEnabled("audit", true); err != nil {
				b.Error(err)
				return
			}
			if err := conn.Filters().Attach(filters.Input, filters.Transform{
				FilterName: "churn", Match: filters.Matcher{Op: "g*"},
				Fn: func(*bus.Message) {}}); err != nil {
				b.Error(err)
				return
			}
			conn.Filters().Detach(filters.Input, "churn")
			cycles.Add(1)
		}
	}()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := sys.Call("Front", "fetch", "k"); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	close(stop)
	<-churnDone
	b.ReportMetric(float64(cycles.Load()), "interchanges")
}
