// Parallel benchmarks for the sharded software-bus data plane (E13): raw
// Send throughput across GOMAXPROCS, connector-mediated calls, System.Call
// fan-out, and a mixed workload that keeps reconfiguring (pause / redirect /
// resume) while traffic flows. Run with -cpu=1,2,4 to see scaling.
package aas_test

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/adl"
	"repro/internal/bus"
	"repro/internal/connector"
)

// BenchmarkBusParallelSend measures the raw data plane: every worker owns a
// distinct (src, dst) pair, so all contention left is the bus's own shared
// state — the single global mutex before the refactor, sharded routes after.
func BenchmarkBusParallelSend(b *testing.B) {
	bb := bus.New()
	var id atomic.Uint64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		n := id.Add(1)
		dst := bus.Address(fmt.Sprintf("dst-%d", n))
		ep, err := bb.Attach(dst, 4096)
		if err != nil {
			b.Error(err)
			return
		}
		m := bus.Message{Kind: bus.Event, Op: "tick",
			Src: bus.Address(fmt.Sprintf("src-%d", n)), Dst: dst}
		for pb.Next() {
			if err := bb.Send(m); err != nil {
				b.Error(err)
				return
			}
			if _, ok := ep.TryReceive(); !ok {
				b.Error("message lost")
				return
			}
		}
	})
}

// BenchmarkBusParallelSendSharedDst is the worst case for sharding: every
// worker hammers the same destination, so the per-address ordering lock is
// the ceiling.
func BenchmarkBusParallelSendSharedDst(b *testing.B) {
	bb := bus.New()
	ep, err := bb.Attach("hot", 1<<16)
	if err != nil {
		b.Fatal(err)
	}
	var id atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		src := bus.Address(fmt.Sprintf("src-%d", id.Add(1)))
		m := bus.Message{Kind: bus.Event, Op: "tick", Src: src, Dst: "hot"}
		for pb.Next() {
			if err := bb.Send(m); err != nil {
				b.Error(err)
				return
			}
			if _, ok := ep.TryReceive(); !ok {
				b.Error("message lost")
				return
			}
		}
	})
}

// BenchmarkConnectorParallelCall drives full connector-mediated round trips
// (client -> connector -> echo server -> client) from parallel clients.
func BenchmarkConnectorParallelCall(b *testing.B) {
	bb := bus.New()
	srv, err := bb.Attach("srv", 1<<14)
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			m, err := srv.Receive(ctx)
			if err != nil {
				return
			}
			_ = bb.Send(bus.Message{Kind: bus.Reply, Op: m.Op,
				Payload: connector.ReplyPayload{Results: []any{"v"}},
				Src:     "srv", Dst: m.Src, Corr: m.Corr})
		}
	}()
	conn, err := connector.New("cpar", adl.KindRPC, bb, []bus.Address{"srv"})
	if err != nil {
		b.Fatal(err)
	}
	conn.Start(ctx)
	defer func() {
		cancel()
		conn.Stop()
		<-done
	}()
	target := connector.Address("cpar")

	var id atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		cli, err := bb.Attach(bus.Address(fmt.Sprintf("cli-%d", id.Add(1))), 1<<12)
		if err != nil {
			b.Error(err)
			return
		}
		var corr uint64
		for pb.Next() {
			corr++
			if err := bb.Send(bus.Message{Kind: bus.Request, Op: "get",
				Payload: connector.CallPayload{Args: []any{"k"}},
				Src:     cli.Addr(), Dst: target, Corr: corr}); err != nil {
				b.Error(err)
				return
			}
			for {
				m, err := cli.Receive(ctx)
				if err != nil {
					b.Error(err)
					return
				}
				if m.Kind == bus.Reply && m.Corr == corr {
					break
				}
			}
		}
	})
}

// BenchmarkSystemCallParallel measures the platform edge: concurrent user
// requests entering through System.Call and fanning out over the bus.
func BenchmarkSystemCallParallel(b *testing.B) {
	sys, _ := startBenchSystem(b)
	if _, err := sys.Call("Store", "put", "k", "v"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := sys.Call("Store", "get", "k"); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkBusMixedReconfigUnderLoad keeps the control plane busy while the
// data plane streams: each worker periodically pauses its destination (so
// traffic is parked), installs and removes a redirect rule, resumes (so the
// parked run is flushed in order), and verifies nothing was lost.
func BenchmarkBusMixedReconfigUnderLoad(b *testing.B) {
	bb := bus.New()
	var id atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		n := id.Add(1)
		dst := bus.Address(fmt.Sprintf("mix-dst-%d", n))
		alias := bus.Address(fmt.Sprintf("mix-alias-%d", n))
		ep, err := bb.Attach(dst, 1<<14)
		if err != nil {
			b.Error(err)
			return
		}
		m := bus.Message{Kind: bus.Event, Op: "tick",
			Src: bus.Address(fmt.Sprintf("mix-src-%d", n)), Dst: dst}
		var i, sent, recv uint64
		for pb.Next() {
			i++
			switch {
			case i%512 == 0:
				bb.Pause(dst)
				if err := bb.Send(m); err != nil { // parked on the paused channel
					b.Error(err)
					return
				}
				sent++
				if err := bb.Redirect(alias, dst); err != nil {
					b.Error(err)
					return
				}
				via := m
				via.Dst = alias // exercises redirect resolution
				if err := bb.Send(via); err != nil {
					b.Error(err)
					return
				}
				sent++
				if err := bb.Redirect(alias, ""); err != nil {
					b.Error(err)
					return
				}
				if _, err := bb.Resume(dst); err != nil {
					b.Error(err)
					return
				}
			default:
				if err := bb.Send(m); err != nil {
					b.Error(err)
					return
				}
				sent++
			}
			if i%256 == 0 {
				for {
					if _, ok := ep.TryReceive(); !ok {
						break
					}
					recv++
				}
			}
		}
		for {
			m, ok := ep.TryReceive()
			if !ok {
				break
			}
			_ = m
			recv++
		}
		if recv != sent {
			b.Errorf("lost traffic during reconfiguration: sent=%d received=%d", sent, recv)
		}
	})
}
