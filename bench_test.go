// Micro-benchmarks backing the experiment index in EXPERIMENTS.md; one
// Benchmark family per experiment (E2–E12; E1 is the quickstart example).
// The scenario-level versions with full tables live in cmd/aasbench.
package aas_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	aas "repro"

	"repro/internal/adl"
	"repro/internal/bus"
	"repro/internal/connector"
	"repro/internal/control"
	"repro/internal/deploy"
	"repro/internal/filters"
	"repro/internal/flo"
	"repro/internal/inject"
	"repro/internal/lts"
	"repro/internal/metaobj"
	"repro/internal/netsim"
	"repro/internal/registry"
)

// ---- E2: connector overhead -------------------------------------------------

// benchBus builds a bus with an echo server and returns (bus, client
// endpoint, target address, cleanup).
func benchBus(b *testing.B, viaConnector bool, nFilters int) (*bus.Bus, *bus.Endpoint, bus.Address, func()) {
	b.Helper()
	bb := bus.New()
	srv, err := bb.Attach("srv", 4096)
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			m, err := srv.Receive(ctx)
			if err != nil {
				return
			}
			_ = bb.Send(bus.Message{Kind: bus.Reply, Op: m.Op,
				Payload: connector.ReplyPayload{Results: []any{"v"}},
				Src:     "srv", Dst: m.Src, Corr: m.Corr})
		}
	}()
	cli, err := bb.Attach("cli", 4096)
	if err != nil {
		b.Fatal(err)
	}
	target := bus.Address("srv")
	var conn *connector.Connector
	if viaConnector {
		conn, err = connector.New("c", adl.KindRPC, bb, []bus.Address{"srv"})
		if err != nil {
			b.Fatal(err)
		}
		var sink uint64
		for i := 0; i < nFilters; i++ {
			if err := conn.Filters().Attach(filters.Input, filters.Transform{
				FilterName: fmt.Sprintf("f%d", i), Fn: func(*bus.Message) { sink++ }}); err != nil {
				b.Fatal(err)
			}
		}
		conn.Start(ctx)
		target = connector.Address("c")
	}
	cleanup := func() {
		cancel()
		if conn != nil {
			conn.Stop()
		}
		<-done
	}
	return bb, cli, target, cleanup
}

func runCalls(b *testing.B, bb *bus.Bus, cli *bus.Endpoint, target bus.Address) {
	b.Helper()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		corr := uint64(i + 1)
		if err := bb.Send(bus.Message{Kind: bus.Request, Op: "get",
			Payload: connector.CallPayload{Args: []any{"k"}},
			Src:     "cli", Dst: target, Corr: corr}); err != nil {
			b.Fatal(err)
		}
		for {
			m, err := cli.Receive(ctx)
			if err != nil {
				b.Fatal(err)
			}
			if m.Kind == bus.Reply && m.Corr == corr {
				break
			}
		}
	}
}

func BenchmarkE2_DirectCall(b *testing.B) {
	bb, cli, target, cleanup := benchBus(b, false, 0)
	defer cleanup()
	runCalls(b, bb, cli, target)
}

func BenchmarkE2_ConnectorCall(b *testing.B) {
	bb, cli, target, cleanup := benchBus(b, true, 0)
	defer cleanup()
	runCalls(b, bb, cli, target)
}

func BenchmarkE2_ConnectorCall16Filters(b *testing.B) {
	bb, cli, target, cleanup := benchBus(b, true, 16)
	defer cleanup()
	runCalls(b, bb, cli, target)
}

// ---- E3/E4/E5: adaptation vs reconfiguration, quiescence, state transfer ----

func BenchmarkE3_AdaptationFilterSwap(b *testing.B) {
	var set filters.Set
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := set.Attach(filters.Input, filters.Transform{FilterName: "a", Fn: func(*bus.Message) {}}); err != nil {
			b.Fatal(err)
		}
		set.Detach(filters.Input, "a")
	}
}

func BenchmarkE4_PauseResume(b *testing.B) {
	for _, inflight := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("inflight=%d", inflight), func(b *testing.B) {
			bb := bus.New()
			dst, err := bb.Attach("dst", inflight+16)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bb.Pause("dst")
				for j := 0; j < inflight; j++ {
					if err := bb.Send(bus.Message{Kind: bus.Event, Payload: j, Src: "s", Dst: "dst"}); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := bb.Resume("dst"); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				for {
					if _, ok := dst.TryReceive(); !ok {
						break
					}
				}
				b.StartTimer()
			}
		})
	}
}

func BenchmarkE5_StateSnapshotRestore(b *testing.B) {
	for _, keys := range []int{64, 1024, 16384} {
		b.Run(fmt.Sprintf("keys=%d", keys), func(b *testing.B) {
			kv := newBenchKV(keys)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				snap, err := kv.Snapshot()
				if err != nil {
					b.Fatal(err)
				}
				if err := kv.Restore(snap); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- E6: placement planning ---------------------------------------------------

func benchTopo(b *testing.B) *netsim.Topology {
	b.Helper()
	topo := netsim.New(1, time.Millisecond, 0)
	for _, r := range []netsim.Region{"eu", "us", "ap"} {
		for i := 0; i < 4; i++ {
			if _, err := topo.AddNode(netsim.NodeID(fmt.Sprintf("%s-%d", r, i)), r, 16, i == 0); err != nil {
				b.Fatal(err)
			}
		}
	}
	topo.SetRegionLatency("eu", "us", 80*time.Millisecond)
	topo.SetRegionLatency("eu", "ap", 120*time.Millisecond)
	topo.SetRegionLatency("us", "ap", 100*time.Millisecond)
	return topo
}

func benchReqs() []deploy.Requirement {
	return []deploy.Requirement{
		{Component: "gw", CPU: 2, Region: "eu"},
		{Component: "session", CPU: 4},
		{Component: "store", CPU: 4, Colocate: []string{"session"}},
		{Component: "auth", CPU: 1, Secure: true},
		{Component: "backup", CPU: 4, Anti: []string{"store"}},
	}
}

func BenchmarkE6_GreedyPlanner(b *testing.B) {
	topo := benchTopo(b)
	reqs := benchReqs()
	obj := deploy.Objective{Edges: []deploy.Edge{{A: "session", B: "gw", Weight: 10}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (deploy.Greedy{}).Plan(topo, reqs, obj); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6_LocalSearchPlanner(b *testing.B) {
	topo := benchTopo(b)
	reqs := benchReqs()
	obj := deploy.Objective{Edges: []deploy.Edge{{A: "session", B: "gw", Weight: 10}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (deploy.LocalSearch{Seed: int64(i), Budget: 500}).Plan(topo, reqs, obj); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E7: controllers ----------------------------------------------------------

func BenchmarkE7_PIDStep(b *testing.B) {
	pid := &control.PID{Kp: 0.5, Ki: 0.2, IntMax: 2000, OutMin: 60, OutMax: 400}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pid.Update(28.6, 20, time.Second)
	}
}

func BenchmarkE7_FuzzyStep(b *testing.B) {
	fz := &control.Fuzzy{ErrScale: 30, DErrScale: 60, OutScale: 25, OutMin: 60, OutMax: 400}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fz.Update(28.6, 20, time.Second)
	}
}

// ---- E8: interception scaling ---------------------------------------------------

func BenchmarkE8_FilterChain(b *testing.B) {
	for _, n := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			var set filters.Set
			var sink uint64
			for i := 0; i < n; i++ {
				if err := set.Attach(filters.Input, filters.Transform{
					FilterName: fmt.Sprintf("f%d", i), Fn: func(*bus.Message) { sink++ }}); err != nil {
					b.Fatal(err)
				}
			}
			m := &bus.Message{Op: "op", Kind: bus.Request}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				set.Eval(filters.Input, m)
			}
		})
	}
}

func BenchmarkE8_Injector(b *testing.B) {
	bb := bus.New()
	dst, err := bb.Attach("dst", 1024)
	if err != nil {
		b.Fatal(err)
	}
	inj, err := inject.New("i", inject.Scope{Dst: []bus.Address{"dst"}},
		inject.Behavior{TransformFn: func(*bus.Message) {}})
	if err != nil {
		b.Fatal(err)
	}
	inject.Install(bb, inj)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bb.Send(bus.Message{Kind: bus.Event, Src: "s", Dst: "dst"}); err != nil {
			b.Fatal(err)
		}
		if _, ok := dst.TryReceive(); !ok {
			b.Fatal("lost message")
		}
	}
}

func BenchmarkE8_MetaObjectChain(b *testing.B) {
	objs := make([]*metaobj.MetaObject, 8)
	for i := range objs {
		objs[i] = &metaobj.MetaObject{
			Name: fmt.Sprintf("w%d", i), Props: metaobj.Modificatory,
			Invoke: func(m *bus.Message, next func(*bus.Message) error) error { return next(m) },
		}
	}
	chain, err := metaobj.Compose(objs...)
	if err != nil {
		b.Fatal(err)
	}
	m := &bus.Message{Op: "op"}
	base := func(*bus.Message) error { return nil }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := chain.Execute(m, base); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E9: LTS checking -----------------------------------------------------------

func chain(name string, n int) *lts.LTS {
	bl := lts.NewBuilder(name).Initial("s0")
	for i := 0; i < n; i++ {
		req, rsp := lts.Recv("req"), lts.SendAct("rsp")
		if name == "client" {
			req, rsp = lts.SendAct("req"), lts.Recv("rsp")
		}
		bl.Trans(fmt.Sprintf("s%d", 2*i), req, fmt.Sprintf("s%d", 2*i+1))
		bl.Trans(fmt.Sprintf("s%d", 2*i+1), rsp, fmt.Sprintf("s%d", (2*i+2)%(2*n)))
	}
	return bl.MustBuild()
}

func BenchmarkE9_CompatCheck(b *testing.B) {
	for _, n := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("states=%d", 2*n), func(b *testing.B) {
			client, server := chain("client", n), chain("server", n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if rep := lts.CheckCompat(client, server); !rep.Compatible {
					b.Fatal("should be compatible")
				}
			}
		})
	}
}

func BenchmarkE9_Bisimulation(b *testing.B) {
	l1, l2 := chain("client", 64), chain("client", 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !lts.Bisimilar(l1, l2) {
			b.Fatal("identical chains must be bisimilar")
		}
	}
}

// ---- E10: FLO rules ---------------------------------------------------------------

func BenchmarkE10_RuleObserve(b *testing.B) {
	for _, n := range []int{1, 64, 256} {
		b.Run(fmt.Sprintf("rules=%d", n), func(b *testing.B) {
			rules := make([]flo.Rule, 0, n)
			for i := 0; i < n; i++ {
				rules = append(rules, flo.Rule{Trigger: fmt.Sprintf("op%d", i),
					Op: flo.ImpliesLater, Target: fmt.Sprintf("ack%d", i)})
			}
			eng, err := flo.NewEngine(rules)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Observe("op0")
				eng.Observe("ack0")
			}
		})
	}
}

func BenchmarkE10_CycleCheck(b *testing.B) {
	var rules []flo.Rule
	for i := 0; i < 128; i++ {
		rules = append(rules, flo.Rule{Trigger: fmt.Sprintf("op%d", i),
			Op: flo.Implies, Target: fmt.Sprintf("op%d", i+1)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := flo.CheckRules(rules); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E11: compliance checking -----------------------------------------------------

func BenchmarkE11_ComplianceCheck(b *testing.B) {
	old := registry.Interface{Name: "svc", Version: registry.Version{Major: 1}}
	for i := 0; i < 32; i++ {
		old.Ops = append(old.Ops, registry.Signature{
			Name:   fmt.Sprintf("op%d", i),
			Params: []registry.TypeName{"a", "b"}, Results: []registry.TypeName{"r"}})
	}
	newer := old
	newer.Ops = append(append([]registry.Signature{}, old.Ops...),
		registry.Signature{Name: "extra"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := registry.CheckCompliance(old, newer); !rep.Compliant {
			b.Fatal("should be compliant")
		}
	}
}

// ---- E12 / end-to-end: full system call + hot swap --------------------------------

type benchKV struct {
	Data map[string]string
}

func newBenchKV(keys int) *benchKV {
	kv := &benchKV{Data: map[string]string{}}
	for i := 0; i < keys; i++ {
		kv.Data[fmt.Sprintf("key-%08d", i)] = "payload-payload-payload-payload"
	}
	return kv
}

func (k *benchKV) Handle(op string, args []any) ([]any, error) {
	switch op {
	case "get":
		return []any{k.Data[args[0].(string)]}, nil
	case "put":
		k.Data[args[0].(string)] = args[1].(string)
		return []any{"ok"}, nil
	}
	return nil, fmt.Errorf("unknown op %s", op)
}

// HandleTyped serves typed-handle calls in place: request and response
// travel as pointers, no []any boxing on either side (DESIGN.md §8).
func (k *benchKV) HandleTyped(op string, req, resp any) error {
	switch op {
	case "get":
		if r, ok := req.(*string); ok {
			*resp.(*string) = k.Data[*r]
			return nil
		}
	case "put":
		if r, ok := req.(*kvPut); ok {
			k.Data[r.Key] = r.Val
			*resp.(*string) = "ok"
			return nil
		}
	}
	return aas.ErrUntypedOp
}

func (k *benchKV) Snapshot() ([]byte, error) {
	out := make([]byte, 0, len(k.Data)*48)
	for key, v := range k.Data {
		out = append(out, key...)
		out = append(out, '=')
		out = append(out, v...)
		out = append(out, '\n')
	}
	return out, nil
}

func (k *benchKV) Restore(b []byte) error {
	k.Data = map[string]string{}
	start := 0
	for i := 0; i < len(b); i++ {
		if b[i] != '\n' {
			continue
		}
		line := b[start:i]
		start = i + 1
		for j := 0; j < len(line); j++ {
			if line[j] == '=' {
				k.Data[string(line[:j])] = string(line[j+1:])
				break
			}
		}
	}
	return nil
}

const benchADL = `
system Bench {
  component Store {
    provide get(key) -> (value)
    provide put(key, value) -> (status)
    property statefulness = "stateful"
  }
}
`

func startBenchSystem(b *testing.B) (*aas.System, *aas.Registry) {
	b.Helper()
	reg := aas.NewRegistry()
	reg.MustRegister("Store", "1.0", nil, func() any { return newBenchKV(64) })
	sys, err := aas.Load(benchADL, aas.Options{Registry: reg.Registry})
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(sys.Stop)
	return sys, reg
}

func BenchmarkE12_SystemCall(b *testing.B) {
	sys, _ := startBenchSystem(b)
	if _, err := sys.Call("Store", "put", "k", "v"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Call("Store", "get", "k"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE12_HotSwap(b *testing.B) {
	sys, reg := startBenchSystem(b)
	entry, err := reg.Lookup("Store")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.SwapImplementation("Store", entry, true); err != nil {
			b.Fatal(err)
		}
	}
}
