// Command benchjson converts `go test -bench` output on stdin into a JSON
// array on stdout, one record per benchmark result line. CI pipes the bench
// smoke run through it and uploads the result as a BENCH_*.json artifact,
// so the performance trajectory (ns/op, allocs/op) is tracked per commit.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Package     string             `json:"package,omitempty"`
	Cpus        int                `json:"cpus"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

var benchLine = regexp.MustCompile(`^(Benchmark[^\s]+)\s+(\d+)\s+(.+)$`)

func main() {
	var results []Result
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = rest
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name, cpus := splitCpus(m[1])
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		r := Result{Name: name, Package: pkg, Cpus: cpus, Iterations: iters}
		// The tail is unit pairs: "123 ns/op", "0 B/op", "7 allocs/op",
		// plus any ReportMetric extras ("3874 reconfigs").
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				b := v
				r.BytesPerOp = &b
			case "allocs/op":
				a := v
				r.AllocsPerOp = &a
			default:
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra[unit] = v
			}
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// splitCpus separates "BenchmarkFoo-8" into ("BenchmarkFoo", 8); without a
// suffix the run used one CPU.
func splitCpus(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name, 1
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n <= 0 {
		return name, 1
	}
	return name[:i], n
}
