package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const planADL = `
system Shop {
  component Web {
    provide page(path) -> (html)
    require lookup(sku) -> (item)
  }
  component Catalog {
    provide lookup(sku) -> (item)
  }
  connector Rpc { kind rpc }
  bind Web.lookup -> Catalog.lookup via Rpc
  deploy Web on region=eu cpu=2
  deploy Catalog on region=eu cpu=1
}
`

const brokenADL = `
system Broken {
  component Web {
    provide page(path) -> (html)
    require lookup(sku) -> (item)
  }
  connector Rpc { kind rpc }
  bind Web.lookup -> Nowhere.lookup via Rpc
}
`

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPlanValidFile(t *testing.T) {
	path := writeFile(t, "shop.adl", planADL)
	var stdout, stderr bytes.Buffer
	if code := run([]string{path}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"placing 2 components on 12 nodes",
		"local-search",
		"best placement:",
		"Web",
		"Catalog",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// The eu region preference must be honoured: both components land on
	// eu-* nodes of the synthetic topology.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "->") && strings.Contains(line, "  ") &&
			(strings.Contains(line, "Web") || strings.Contains(line, "Catalog")) {
			if !strings.Contains(line, "-> eu-") {
				t.Fatalf("placement ignored the eu region preference: %q", line)
			}
		}
	}
}

func TestPlanDeterministicUnderSeed(t *testing.T) {
	path := writeFile(t, "shop.adl", planADL)
	runOnce := func() string {
		var stdout, stderr bytes.Buffer
		if code := run([]string{"-seed", "7", path}, &stdout, &stderr); code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, stderr.String())
		}
		return stdout.String()
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Fatalf("same seed produced different plans:\n%s\n---\n%s", a, b)
	}
}

func TestPlanInvalidFile(t *testing.T) {
	path := writeFile(t, "broken.adl", brokenADL)
	var stdout, stderr bytes.Buffer
	if code := run([]string{path}, &stdout, &stderr); code != 1 {
		t.Fatalf("want exit 1, got %d (stdout %q)", code, stdout.String())
	}
	if !strings.Contains(stderr.String(), "deployplan:") {
		t.Fatalf("semantic failure not reported: %q", stderr.String())
	}
	if strings.Contains(stdout.String(), "best placement") {
		t.Fatal("invalid configuration still produced a placement")
	}
}

func TestPlanUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("want exit 2, got %d", code)
	}
	if !strings.Contains(stderr.String(), "usage:") {
		t.Fatalf("missing usage line: %q", stderr.String())
	}
}
