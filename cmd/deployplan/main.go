// Command deployplan computes a constrained placement for an ADL
// configuration on a synthetic topology, comparing the optimizing planner
// against the baselines — the deployment concern of the paper's
// introduction (safety, security, liability, load balancing, performance).
//
// Usage:
//
//	deployplan <file.adl> [-nodes N] [-regions R] [-seed S]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/adl"
	"repro/internal/deploy"
	"repro/internal/netsim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("deployplan", flag.ContinueOnError)
	fs.SetOutput(stderr)
	nodes := fs.Int("nodes", 6, "nodes per region")
	regions := fs.Int("regions", 2, "number of regions")
	seed := fs.Int64("seed", 1, "planner seed")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: deployplan [flags] <file.adl>")
		return 2
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "deployplan: %v\n", err)
		return 1
	}
	cfg, err := adl.Parse(string(src))
	if err != nil {
		fmt.Fprintf(stderr, "deployplan: %v\n", err)
		return 1
	}
	if _, err := adl.Check(cfg); err != nil {
		fmt.Fprintf(stderr, "deployplan: %v\n", err)
		return 1
	}

	topo := netsim.New(*seed, time.Millisecond, 0)
	regionNames := []netsim.Region{"eu", "us", "ap", "sa", "af", "oc"}
	for r := 0; r < *regions && r < len(regionNames); r++ {
		for n := 0; n < *nodes; n++ {
			id := netsim.NodeID(fmt.Sprintf("%s-%d", regionNames[r], n))
			if _, err := topo.AddNode(id, regionNames[r], 16, n == 0); err != nil {
				fmt.Fprintf(stderr, "deployplan: %v\n", err)
				return 1
			}
		}
		for r2 := 0; r2 < r; r2++ {
			topo.SetRegionLatency(regionNames[r], regionNames[r2], 80*time.Millisecond)
		}
	}

	reqs := deploy.FromConfig(cfg)
	obj := deploy.Objective{}
	for _, b := range cfg.Bindings {
		obj.Edges = append(obj.Edges, deploy.Edge{A: b.FromComponent, B: b.ToComponent, Weight: 1})
	}

	fmt.Fprintf(stdout, "placing %d components on %d nodes\n\n", len(reqs), len(topo.Nodes()))
	fmt.Fprintf(stdout, "%-22s %12s\n", "planner", "score")
	planners := []deploy.Planner{
		deploy.Random{Seed: *seed},
		deploy.RoundRobin{},
		deploy.Greedy{},
		deploy.LocalSearch{Seed: *seed},
	}
	var best deploy.Placement
	bestScore := 0.0
	for _, pl := range planners {
		p, err := pl.Plan(topo, reqs, obj)
		if err != nil {
			fmt.Fprintf(stdout, "%-22s %12s (%v)\n", pl.Name(), "-", err)
			continue
		}
		score, err := deploy.Score(topo, reqs, obj, p)
		if err != nil {
			fmt.Fprintf(stdout, "%-22s %12s (%v)\n", pl.Name(), "-", err)
			continue
		}
		fmt.Fprintf(stdout, "%-22s %12.2f\n", pl.Name(), score)
		if best == nil || score < bestScore {
			best, bestScore = p, score
		}
	}
	if best == nil {
		fmt.Fprintln(stderr, "deployplan: no feasible placement")
		return 1
	}
	fmt.Fprintln(stdout, "\nbest placement:")
	for _, comp := range cfg.ComponentNames() {
		fmt.Fprintf(stdout, "  %-20s -> %s\n", comp, best[comp])
	}
	return 0
}
