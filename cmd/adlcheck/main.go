// Command adlcheck parses and semantically validates AAS architecture
// descriptions: name resolution, binding signature compatibility, LTS
// behavioural compatibility of bound peers, FLO rule cycle checks and
// deployment references. With two files it also prints the reconfiguration
// plan between them (adl.Diff).
//
// Usage:
//
//	adlcheck file.adl            validate one configuration
//	adlcheck old.adl new.adl     validate both and print the change plan
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/adl"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 || len(args) > 2 {
		fmt.Fprintln(stderr, "usage: adlcheck <file.adl> [new.adl]")
		return 2
	}
	cfg, ok := load(args[0], stdout, stderr)
	if len(args) == 1 {
		if !ok {
			return 1
		}
		fmt.Fprintf(stdout, "%s: OK (%s)\n", args[0], cfg)
		return 0
	}
	newCfg, ok2 := load(args[1], stdout, stderr)
	if !ok || !ok2 {
		return 1
	}
	fmt.Fprintf(stdout, "%s -> %s reconfiguration plan:\n", args[0], args[1])
	fmt.Fprintln(stdout, adl.FormatPlan(adl.Diff(cfg, newCfg)))
	return 0
}

// load parses and checks one file, printing diagnostics; ok is false on
// errors.
func load(path string, stdout, stderr io.Writer) (*adl.Config, bool) {
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "adlcheck: %v\n", err)
		return nil, false
	}
	cfg, err := adl.Parse(string(src))
	if err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", path, err)
		return nil, false
	}
	diags, err := adl.Check(cfg)
	for _, d := range diags {
		fmt.Fprintf(stdout, "%s: %s\n", path, d)
	}
	if err != nil {
		return nil, false
	}
	return cfg, true
}
