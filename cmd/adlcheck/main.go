// Command adlcheck parses and semantically validates AAS architecture
// descriptions: name resolution, binding signature compatibility, LTS
// behavioural compatibility of bound peers, FLO rule cycle checks and
// deployment references. With two files it also prints the reconfiguration
// plan between them (adl.Diff).
//
// Usage:
//
//	adlcheck file.adl            validate one configuration
//	adlcheck old.adl new.adl     validate both and print the change plan
package main

import (
	"fmt"
	"os"

	"repro/internal/adl"
)

func main() {
	if len(os.Args) < 2 || len(os.Args) > 3 {
		fmt.Fprintln(os.Stderr, "usage: adlcheck <file.adl> [new.adl]")
		os.Exit(2)
	}
	cfg, ok := load(os.Args[1])
	if len(os.Args) == 2 {
		if !ok {
			os.Exit(1)
		}
		fmt.Printf("%s: OK (%s)\n", os.Args[1], cfg)
		return
	}
	newCfg, ok2 := load(os.Args[2])
	if !ok || !ok2 {
		os.Exit(1)
	}
	fmt.Printf("%s -> %s reconfiguration plan:\n", os.Args[1], os.Args[2])
	fmt.Println(adl.FormatPlan(adl.Diff(cfg, newCfg)))
}

// load parses and checks one file, printing diagnostics; ok is false on
// errors.
func load(path string) (*adl.Config, bool) {
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adlcheck: %v\n", err)
		return nil, false
	}
	cfg, err := adl.Parse(string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
		return nil, false
	}
	diags, err := adl.Check(cfg)
	for _, d := range diags {
		fmt.Printf("%s: %s\n", path, d)
	}
	if err != nil {
		return nil, false
	}
	return cfg, true
}
