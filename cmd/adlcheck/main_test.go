package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const validADL = `
system Demo {
  component Greeter {
    provide greet(name) -> (greeting)
  }
}
`

const validADLv2 = `
system Demo {
  component Greeter {
    provide greet(name) -> (greeting)
  }
  component Logger {
    provide log(line) -> (ok)
  }
}
`

// invalidADL parses but fails semantic checking: the binding names a
// component that does not exist.
const invalidADL = `
system Broken {
  component Front {
    provide fetch(key) -> (value)
    require get(key) -> (value)
  }
  connector Link { kind rpc }
  bind Front.get -> Ghost.get via Link
}
`

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestValidFile(t *testing.T) {
	path := writeFile(t, "demo.adl", validADL)
	var stdout, stderr bytes.Buffer
	if code := run([]string{path}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	want := path + ": OK"
	if !strings.Contains(stdout.String(), want) {
		t.Fatalf("stdout %q does not contain %q", stdout.String(), want)
	}
}

func TestInvalidFile(t *testing.T) {
	path := writeFile(t, "broken.adl", invalidADL)
	var stdout, stderr bytes.Buffer
	if code := run([]string{path}, &stdout, &stderr); code != 1 {
		t.Fatalf("want exit 1, got %d (stdout %q)", code, stdout.String())
	}
	out := stdout.String() + stderr.String()
	if !strings.Contains(out, "unknown component") {
		t.Fatalf("diagnostics %q do not name the unknown component", out)
	}
	if strings.Contains(stdout.String(), "OK") {
		t.Fatalf("invalid file reported OK: %q", stdout.String())
	}
}

func TestUnparsableFile(t *testing.T) {
	path := writeFile(t, "garbage.adl", "this is not adl {")
	var stdout, stderr bytes.Buffer
	if code := run([]string{path}, &stdout, &stderr); code != 1 {
		t.Fatalf("want exit 1, got %d", code)
	}
	if stderr.Len() == 0 {
		t.Fatal("parse failure printed nothing to stderr")
	}
}

func TestReconfigurationPlan(t *testing.T) {
	oldPath := writeFile(t, "old.adl", validADL)
	newPath := writeFile(t, "new.adl", validADLv2)
	var stdout, stderr bytes.Buffer
	if code := run([]string{oldPath, newPath}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "reconfiguration plan") {
		t.Fatalf("missing plan header: %q", out)
	}
	if !strings.Contains(out, "add-component Logger") {
		t.Fatalf("plan does not name the added component: %q", out)
	}
}

func TestUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("want exit 2, got %d", code)
	}
	if !strings.Contains(stderr.String(), "usage:") {
		t.Fatalf("missing usage line: %q", stderr.String())
	}
}

func TestMissingFile(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{filepath.Join(t.TempDir(), "nope.adl")}, &stdout, &stderr); code != 1 {
		t.Fatalf("want exit 1, got %d", code)
	}
}
