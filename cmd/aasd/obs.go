// Live introspection endpoint (-obs): one HTTP listener serving the
// telemetry plane of DESIGN.md §11 —
//
//	/metrics      the unified aas.Telemetry snapshot as JSON
//	/trace        recent sampled spans, ?component= and ?trace= filterable
//	/debug/vars   the same snapshot under the expvar convention
//	/debug/pprof  the standard Go profiling surface
//
// The endpoint is read-only and allocation-cold: every request takes a
// fresh snapshot/span copy, so serving it never perturbs the hot paths it
// observes beyond the recorder's lock-free slot claims.
package main

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"

	aas "repro"
)

// startObs serves the introspection endpoint on addr (e.g. ":9090"). It
// returns the bound address and a stopper.
func startObs(addr string, snap func() aas.Telemetry, spans func() []aas.Span) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, snap())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		out := spans()
		if comp := r.URL.Query().Get("component"); comp != "" {
			out = filterSpans(out, func(s aas.Span) bool { return s.Comp == comp })
		}
		if tr := r.URL.Query().Get("trace"); tr != "" {
			id, perr := strconv.ParseUint(tr, 0, 64)
			if perr != nil {
				http.Error(w, "trace: want a decimal or 0x id: "+perr.Error(), http.StatusBadRequest)
				return
			}
			out = filterSpans(out, func(s aas.Span) bool { return uint64(s.Trace) == id })
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
		writeJSON(w, out)
	})
	// expvar convention: the whole snapshot published under one key, plus
	// whatever the process already exposes (cmdline, memstats).
	expvar.Publish("aas", expvar.Func(func() any { return snap() }))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func filterSpans(in []aas.Span, keep func(aas.Span) bool) []aas.Span {
	out := in[:0]
	for _, s := range in {
		if keep(s) {
			out = append(out, s)
		}
	}
	return out
}
