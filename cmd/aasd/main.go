// Command aasd loads an ADL file, assembles the system with stub echo
// implementations for every component, runs it, and prints the RAML
// introspection stream plus a periodic introspection summary. It is the
// "run an architecture" developer tool; real applications embed the aas
// package instead and register their own implementations.
//
// With the cluster flags the same architecture spans real nodes: each aasd
// process hosts the components placed on its node and reaches the rest
// through location-transparent remote bindings over TCP.
//
// Usage:
//
//	aasd [-duration 5s] [-rps 50] <file.adl>
//
//	# distributed: two processes, one architecture
//	aasd -node n1 -listen 127.0.0.1:7001 -place Store=n2 file.adl
//	aasd -node n2 -listen 127.0.0.1:7002 -join 127.0.0.1:7001 \
//	     -place Store=n2 file.adl
//
//	# elastic: join through any live peer (gossip completes the mesh),
//	# rebalance by load, replicate state and fail over warm
//	aasd -node n3 -listen 127.0.0.1:7003 -seed 127.0.0.1:7001 \
//	     -rebalance -replicate 500ms -failover file.adl
//
//	# in-process multi-node demo over TCP loopback
//	aasd -nodes 2 file.adl
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	aas "repro"

	"repro/internal/registry"
)

// echo is the stub implementation every declared component gets.
type echo struct{ name string }

func (e echo) Handle(op string, args []any) ([]any, error) {
	return []any{e.name + "." + op}, nil
}

func main() {
	dur := flag.Duration("duration", 5*time.Second, "how long to run")
	rps := flag.Int("rps", 50, "synthetic request rate against the first component")
	nodeID := flag.String("node", "", "cluster node id (enables cluster mode)")
	listen := flag.String("listen", "127.0.0.1:0", "cluster listen address")
	join := flag.String("join", "", "comma-separated peer addresses to join explicitly")
	seed := flag.String("seed", "", "comma-separated seed addresses: join through any live one, gossip discovers the rest")
	rebalance := flag.Bool("rebalance", false, "run the load-driven placement loop (moves owned components toward idle peers)")
	replicate := flag.Duration("replicate", 0, "ship warm state snapshots to a follower at this interval (0 disables)")
	failover := flag.Bool("failover", false, "promote components of dead peers (warm from a standby when one exists)")
	place := flag.String("place", "", "component placement Comp=node,Comp=node (components placed on other nodes are remote)")
	nodes := flag.Int("nodes", 0, "run an in-process N-node cluster demo instead of a single system")
	obs := flag.String("obs", "", "serve live introspection on this address (e.g. :9090): /metrics, /trace, /debug/vars, /debug/pprof")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: aasd [flags] <file.adl>")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "aasd: %v\n", err)
		os.Exit(1)
	}
	cfg, err := aas.ParseConfig(string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "aasd: %v\n", err)
		os.Exit(1)
	}

	placement := parsePlacement(*place)
	if *nodes > 1 {
		runInProcessCluster(string(src), cfg, *nodes, placement, *dur, *rps, *obs)
		return
	}

	reg := stubRegistry(cfg)
	opts := aas.Options{Registry: reg.Registry}
	if *nodeID != "" {
		// Components placed on other nodes are remote here.
		opts.Remote = map[string]bool{}
		for comp, node := range placement {
			if node != *nodeID {
				opts.Remote[comp] = true
			}
		}
	}
	sys, err := aas.New(cfg, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aasd: %v\n", err)
		os.Exit(1)
	}
	if err := sys.Start(context.Background()); err != nil {
		fmt.Fprintf(os.Stderr, "aasd: %v\n", err)
		os.Exit(1)
	}
	defer sys.Stop()

	telemetry := sys.Telemetry
	if *nodeID != "" {
		nopts := aas.ClusterOptions{Node: *nodeID, Listen: *listen, Seeds: splitList(*seed)}
		node, err := aas.StartClusterNode(sys, nopts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aasd: %v\n", err)
			os.Exit(1)
		}
		defer node.Close()
		telemetry = node.Telemetry // adds link state and gateway sheds
		fmt.Printf("aasd: node %s listening on %s\n", *nodeID, node.Addr())
		for _, addr := range splitList(*join) {
			if err := node.Join(addr); err != nil {
				fmt.Fprintf(os.Stderr, "aasd: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("aasd: joined %s\n", addr)
		}
		if *rebalance {
			defer node.StartPlacer(aas.PlacerOptions{}).Stop()
			fmt.Println("aasd: placement loop running")
		}
		if *replicate > 0 {
			defer node.StartReplicator(aas.ReplicatorOptions{Interval: *replicate}).Stop()
			fmt.Printf("aasd: replicating warm state every %v\n", *replicate)
		}
		if *failover {
			if err := node.EnableFailover(); err != nil {
				fmt.Fprintf(os.Stderr, "aasd: %v\n", err)
				os.Exit(1)
			}
			fmt.Println("aasd: failover promotion armed")
		}
	}
	if *obs != "" {
		addr, stopObs, err := startObs(*obs, telemetry, sys.Spans)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aasd: obs: %v\n", err)
			os.Exit(1)
		}
		defer stopObs()
		fmt.Printf("aasd: observing on http://%s (/metrics /trace /debug/pprof)\n", addr)
	}

	drive(sys, cfg, *dur, *rps)
}

// stubRegistry registers an echo implementation for every component.
func stubRegistry(cfg *aas.Config) *aas.Registry {
	reg := aas.NewRegistry()
	for _, c := range cfg.Components {
		name := c.Name
		reg.MustRegister(name, "1.0", nil, func() any { return echo{name: name} })
	}
	return reg
}

// splitList parses a comma-separated flag into trimmed non-empty entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parsePlacement parses "Comp=node,Comp=node".
func parsePlacement(s string) map[string]string {
	out := map[string]string{}
	for _, part := range strings.Split(s, ",") {
		if comp, node, ok := strings.Cut(strings.TrimSpace(part), "="); ok {
			out[comp] = node
		}
	}
	return out
}

// runInProcessCluster starts n nodes over TCP loopback in this process,
// spreads unplaced components round-robin, and drives the first node.
func runInProcessCluster(src string, cfg *aas.Config, n int, placement map[string]string, dur time.Duration, rps int, obs string) {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("n%d", i+1)
	}
	for i, c := range cfg.Components {
		if placement[c.Name] == "" {
			placement[c.Name] = ids[i%n]
		}
	}
	h, err := aas.StartCluster(context.Background(), aas.ClusterSpec{
		ADL: src, Nodes: ids, Placement: placement,
		Registry: func(string) *registry.Registry { return stubRegistry(cfg).Registry },
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "aasd: %v\n", err)
		os.Exit(1)
	}
	defer h.Close()
	for comp, node := range placement {
		fmt.Printf("aasd: %s -> %s\n", comp, node)
	}
	if obs != "" {
		// Observe the driven node; the other nodes' spans still show up in
		// its /metrics link table and in cross-node traces it roots.
		first := h.Node(ids[0])
		addr, stopObs, err := startObs(obs, first.Telemetry, first.System().Spans)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aasd: obs: %v\n", err)
			os.Exit(1)
		}
		defer stopObs()
		fmt.Printf("aasd: observing %s on http://%s (/metrics /trace /debug/pprof)\n", ids[0], addr)
	}
	drive(h.System(ids[0]), cfg, dur, rps)
}

// drive subscribes to the RAML stream and sends synthetic load.
func drive(sys *aas.System, cfg *aas.Config, dur time.Duration, rps int) {
	events, cancel := sys.Events().Subscribe(1024)
	defer cancel()
	go func() {
		for e := range events {
			fmt.Printf("[raml] %-18s %-12s %s\n", e.Kind, e.Component, e.Detail)
		}
	}()

	target := ""
	var op string
	for _, c := range cfg.Components {
		if len(c.Provides) > 0 {
			target, op = c.Name, c.Provides[0].Name
			break
		}
	}
	if target == "" {
		fmt.Println("aasd: no providable operations; idling")
		time.Sleep(dur)
		return
	}

	fmt.Printf("aasd: driving %s.%s at %d req/s for %v\n", target, op, rps, dur)
	// One compiled binding handle for the whole run; each request is bounded
	// by a per-call deadline that propagates to the serving node.
	client := sys.Client(target).With(aas.WithDeadline(2 * time.Second))
	ctx := context.Background()
	stop := time.After(dur)
	ticker := time.NewTicker(time.Second / time.Duration(rps))
	defer ticker.Stop()
	served, failed := 0, 0
loop:
	for {
		select {
		case <-stop:
			break loop
		case <-ticker.C:
			if _, err := client.Call(ctx, op, "x"); err != nil {
				failed++
			} else {
				served++
			}
		}
	}
	fmt.Printf("aasd: served=%d failed=%d\n", served, failed)
	m := sys.Introspect()
	for _, c := range m.Components {
		fmt.Printf("  %-16s %-8s calls=%d failures=%d node=%s\n",
			c.Name, c.Lifecycle, c.Calls, c.Failures, c.Node)
	}
	for _, r := range sys.Remotes() {
		fmt.Printf("  %-16s remote\n", r)
	}
}
