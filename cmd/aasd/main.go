// Command aasd loads an ADL file, assembles the system with stub echo
// implementations for every component, runs it, and prints the RAML
// introspection stream plus a periodic introspection summary. It is the
// "run an architecture" developer tool; real applications embed the aas
// package instead and register their own implementations.
//
// Usage:
//
//	aasd [-duration 5s] [-rps 50] <file.adl>
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	aas "repro"
)

// echo is the stub implementation every declared component gets.
type echo struct{ name string }

func (e echo) Handle(op string, args []any) ([]any, error) {
	return []any{e.name + "." + op}, nil
}

func main() {
	dur := flag.Duration("duration", 5*time.Second, "how long to run")
	rps := flag.Int("rps", 50, "synthetic request rate against the first component")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: aasd [flags] <file.adl>")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "aasd: %v\n", err)
		os.Exit(1)
	}
	cfg, err := aas.ParseConfig(string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "aasd: %v\n", err)
		os.Exit(1)
	}

	reg := aas.NewRegistry()
	for _, c := range cfg.Components {
		name := c.Name
		reg.MustRegister(name, "1.0", nil, func() any { return echo{name: name} })
	}
	sys, err := aas.New(cfg, aas.Options{Registry: reg.Registry})
	if err != nil {
		fmt.Fprintf(os.Stderr, "aasd: %v\n", err)
		os.Exit(1)
	}
	if err := sys.Start(context.Background()); err != nil {
		fmt.Fprintf(os.Stderr, "aasd: %v\n", err)
		os.Exit(1)
	}
	defer sys.Stop()

	events, cancel := sys.Events().Subscribe(1024)
	defer cancel()
	go func() {
		for e := range events {
			fmt.Printf("[raml] %-18s %-12s %s\n", e.Kind, e.Component, e.Detail)
		}
	}()

	target := ""
	var op string
	for _, c := range cfg.Components {
		if len(c.Provides) > 0 {
			target, op = c.Name, c.Provides[0].Name
			break
		}
	}
	if target == "" {
		fmt.Println("aasd: no providable operations; idling")
		time.Sleep(*dur)
		return
	}

	fmt.Printf("aasd: driving %s.%s at %d req/s for %v\n", target, op, *rps, *dur)
	stop := time.After(*dur)
	ticker := time.NewTicker(time.Second / time.Duration(*rps))
	defer ticker.Stop()
	served, failed := 0, 0
loop:
	for {
		select {
		case <-stop:
			break loop
		case <-ticker.C:
			if _, err := sys.Call(target, op, "x"); err != nil {
				failed++
			} else {
				served++
			}
		}
	}
	fmt.Printf("aasd: served=%d failed=%d\n", served, failed)
	m := sys.Introspect()
	for _, c := range m.Components {
		fmt.Printf("  %-16s %-8s calls=%d failures=%d node=%s\n",
			c.Name, c.Lifecycle, c.Calls, c.Failures, c.Node)
	}
}
