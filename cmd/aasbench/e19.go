package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	aas "repro"
)

// E19: goodput under open-loop overload. A single system hosts a Busy
// component whose handler occupies one of a fixed pool of service slots for
// a fixed service time; an open-loop generator offers deadline-budgeted
// traffic at 1x, 4x and 10x of a measured base rate, never slowing down when
// the system does — the regime where a FIFO system collapses, because queues
// grow without bound and every slot of capacity is spent serving requests
// whose callers already left.
//
// Service is modeled as sleeping on a slot pool rather than spinning the
// CPU: the slot pool is the capacity limit, so the harness (generator,
// classification goroutines, the runtime itself) does not contend with the
// workload for cycles and the experiment holds on a single-core box.
//
// The governed system (deadline-aware admission at the client edge, EDF
// mailbox ordering, expired-work shedding at dequeue) is asserted to hold
// the line at 4x: at least 90% of the calls it admits complete within their
// budget, and the p99 of successful calls stays within 2x of its 1x value.
// The same workload is then replayed against a seed-configured system
// (Options.NoOverloadControl: FIFO mailboxes, no admission) whose collapse
// is reported for the record but not asserted — its exact failure mix
// (deadline misses vs mailbox overflow) is load- and machine-dependent.
const e19ADL = `
system Overload {
  component Busy {
    provide work(x) -> (r)
  }
}
`

// e19Busy holds one of slots for service per call. A handler that cannot
// claim a slot within patience gives up and frees its goroutine; patience is
// set well past the caller budget, so by then the caller has already counted
// the call as missed and the bail is invisible to the experiment — it only
// bounds how much wedged work a collapse leaves behind.
type e19Busy struct {
	slots    chan struct{}
	service  time.Duration
	patience time.Duration
}

func (b *e19Busy) Handle(op string, args []any) ([]any, error) {
	select {
	case b.slots <- struct{}{}:
	case <-time.After(b.patience):
		return nil, errors.New("busy: no slot within patience")
	}
	time.Sleep(b.service)
	<-b.slots
	return []any{"ok"}, nil
}

// e19Phase is the outcome mix of one open-loop phase.
type e19Phase struct {
	offered, ok, rejected, missed, other uint64
	p50, p99                             time.Duration
}

// goodput is the fraction of admitted calls that completed within budget.
func (p e19Phase) goodput() float64 {
	admitted := p.ok + p.missed + p.other
	if admitted == 0 {
		return 1
	}
	return float64(p.ok) / float64(admitted)
}

func (p e19Phase) String() string {
	return fmt.Sprintf("offered=%d ok=%d rejected=%d missed=%d other=%d goodput=%.1f%% p50=%v p99=%v",
		p.offered, p.ok, p.rejected, p.missed, p.other, 100*p.goodput(),
		p.p50.Round(time.Microsecond), p.p99.Round(time.Microsecond))
}

// e19Drive offers rate calls/s open-loop for dur, one goroutine per call,
// and classifies every outcome. The issue count tracks the wall clock, not
// the tick count, so a dropped ticker tick is made up on the next one and
// the offered load is what was asked for even when the box stalls.
func e19Drive(cl *aas.Client, rate int, dur time.Duration) e19Phase {
	var (
		ph                          e19Phase
		ok, rejected, missed, other atomic.Uint64
		mu                          sync.Mutex
		lat                         []time.Duration
		wg                          sync.WaitGroup
	)
	ticker := time.NewTicker(time.Millisecond)
	defer ticker.Stop()
	ctx := context.Background()
	start := time.Now()
	issued := 0
	for {
		<-ticker.C
		elapsed := time.Since(start)
		if elapsed > dur {
			elapsed = dur
		}
		target := int(float64(rate) * elapsed.Seconds())
		for ; issued < target; issued++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				t0 := time.Now()
				_, err := cl.Call(ctx, "work", "x")
				el := time.Since(t0)
				switch {
				case err == nil:
					ok.Add(1)
					mu.Lock()
					lat = append(lat, el)
					mu.Unlock()
				case errors.Is(err, aas.ErrOverloaded):
					rejected.Add(1)
				case errors.Is(err, context.DeadlineExceeded):
					missed.Add(1)
				default:
					other.Add(1)
				}
			}()
		}
		if elapsed >= dur {
			break
		}
	}
	ph.offered = uint64(issued)
	wg.Wait()
	ph.ok, ph.rejected, ph.missed, ph.other = ok.Load(), rejected.Load(), missed.Load(), other.Load()
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		ph.p50, ph.p99 = lat[len(lat)/2], lat[len(lat)*99/100]
	}
	return ph
}

// e19Capacity measures closed-loop throughput with twice as many callers as
// service slots, so the slots never idle between calls — the sustainable
// service rate everything else is scaled from. The closed-loop calls also
// train the admission estimator's service-time EWMA before the phases run.
func e19Capacity(cl *aas.Client, callers int) int {
	const window = 600 * time.Millisecond
	var served atomic.Uint64
	var wg sync.WaitGroup
	end := time.Now().Add(window)
	for w := 0; w < callers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for time.Now().Before(end) {
				if _, err := cl.Call(ctx, "work", "x"); err == nil {
					served.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	return int(float64(served.Load()) / window.Seconds())
}

// e19System boots one Busy system; seed toggles the pre-governance
// configuration (FIFO mailboxes, no admission control).
func e19System(slots int, service, patience time.Duration, seed bool) *aas.System {
	reg := aas.NewRegistry()
	reg.MustRegister("Busy", "1.0", nil, func() any {
		return &e19Busy{slots: make(chan struct{}, slots), service: service, patience: patience}
	})
	sys, err := aas.Load(e19ADL, aas.Options{Registry: reg.Registry, NoOverloadControl: seed})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		log.Fatal(err)
	}
	return sys
}

func runE19() {
	const (
		slots    = 4 // matches the per-component serve-worker pool
		service  = 5 * time.Millisecond
		budget   = 3 * service // callers wait at most 3 service times
		phaseDur = 1200 * time.Millisecond
	)
	multipliers := []int{1, 4, 10}

	run := func(label string, seed bool) map[int]e19Phase {
		sys := e19System(slots, service, 2*budget, seed)
		defer sys.Stop()
		cl := sys.Client("Busy")
		capacity := e19Capacity(cl, 2*slots)
		base := capacity * 7 / 10
		fmt.Printf("%s: measured capacity %d calls/s, base rate %d calls/s (0.7x)\n", label, capacity, base)
		budgeted := cl.With(aas.WithDeadline(budget))
		out := map[int]e19Phase{}
		for _, m := range multipliers {
			ph := e19Drive(budgeted, base*m, phaseDur)
			out[m] = ph
			fmt.Printf("  %2dx: %s\n", m, ph)
			// Let any backlog (seed mode builds a deep one) drain before the
			// next phase so phases measure steady state, not leftovers.
			drain := time.Now().Add(10 * time.Second)
			for sys.PendingCalls() > 0 && time.Now().Before(drain) {
				time.Sleep(10 * time.Millisecond)
			}
			time.Sleep(100 * time.Millisecond)
		}
		return out
	}

	gov := run("governed (admission + EDF + shedding)", false)
	seed := run("seed (FIFO, no admission)", true)

	fmt.Printf("\ngoodput of admitted calls at 4x overload: governed %.1f%% vs seed %.1f%%\n",
		100*gov[4].goodput(), 100*seed[4].goodput())
	if p1, p4 := gov[1].p99, gov[4].p99; p1 > 0 && p4 > 0 {
		fmt.Printf("governed p99 of successful calls: 1x=%v 4x=%v (%.2fx)\n",
			p1.Round(time.Microsecond), p4.Round(time.Microsecond), float64(p4)/float64(p1))
	}

	// Assertions cover the governed system only; the seed numbers above
	// document the collapse this PR exists to prevent.
	g4 := gov[4]
	if g4.goodput() < 0.90 {
		log.Fatalf("E19 FAILED: governed goodput at 4x = %.1f%%, want >= 90%%", 100*g4.goodput())
	}
	if gov[1].p99 > 0 && g4.p99 > 2*gov[1].p99 {
		log.Fatalf("E19 FAILED: governed p99 at 4x = %v, more than 2x the 1x p99 %v", g4.p99, gov[1].p99)
	}
	if g4.other != 0 {
		log.Fatalf("E19 FAILED: %d unexpected errors under overload", g4.other)
	}
	fmt.Println("governed system holds >=90% goodput and flat p99 through 4x overload; seed numbers above show the collapse")
}
