package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	aas "repro"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/registry"
)

// E21: end-to-end tracing under live migration churn. Two cluster nodes
// host a stateful Probe component that migrates between them continuously
// while n1 drives traced calls through one compiled handle. Every sampled
// call leaves a span tree scattered across both nodes' ring recorders —
// client edge on n1, gateway forward span on n1 when the call crossed the
// link, server span wherever the component happened to live — and the
// experiment reassembles each tree by trace id after the run.
//
// Three claims are exercised:
//
//  1. Stitching: every trace rooted by the driver reassembles into a
//     well-formed tree — exactly one client root, every parent edge
//     resolving inside the same trace, and the remote server span parented
//     under the gateway's forward span, never directly under the root.
//     Migration churn must not orphan or cross-wire a single span.
//  2. Attribution: each server span carries the queue/service split — the
//     time the request sat in a mailbox is separated from handler run time,
//     and both fit inside the client span's end-to-end interval.
//  3. Conservation: after the run both nodes' unified snapshots balance
//     (Sent == Delivered + Dropped + Held) with zero call errors, while the
//     churn sustained at least 40 migrations/sec.
const e21ADL = `
system TracedMobility {
  component Probe {
    provide get(k) -> (v)
  }
}
`

// e21Probe is a minimal stateful component: the hop counter rides
// snapshots, proving the spans describe calls served by a component that
// really was in flight between nodes.
type e21Probe struct {
	mu   sync.Mutex
	hops int64
}

func (p *e21Probe) Handle(op string, args []any) ([]any, error) {
	if op != "get" {
		return nil, fmt.Errorf("probe: unknown op %s", op)
	}
	return []any{args[0]}, nil
}

func (p *e21Probe) Snapshot() ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.hops++
	return json.Marshal(p.hops)
}

func (p *e21Probe) Restore(b []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return json.Unmarshal(b, &p.hops)
}

func runE21() {
	h, err := aas.StartCluster(context.Background(), aas.ClusterSpec{
		ADL:       e21ADL,
		Nodes:     []string{"n1", "n2"},
		Placement: map[string]string{"Probe": "n2"},
		Registry: func(string) *registry.Registry {
			reg := &registry.Registry{}
			if err := reg.Register(registry.Entry{Name: "Probe", Version: registry.Version{Major: 1},
				New: func() any { return &e21Probe{} }}); err != nil {
				log.Fatal(err)
			}
			return reg
		},
		// Rate-1 sampling with rings deep enough that no span from the run
		// is evicted before reassembly.
		Options: func(string) core.Options {
			return core.Options{TraceBuffer: 1 << 12}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer h.Close()
	sys1, sys2 := h.System("n1"), h.System("n2")
	ctx := context.Background()

	probe := sys1.Client("Probe").With(aas.WithDeadline(5 * time.Second))
	if _, err := probe.Call(ctx, "get", "warm"); err != nil {
		log.Fatal(err)
	}

	// Migration churn: bounce the component between the nodes as fast as a
	// handoff completes, with a short breather so calls interleave.
	stop := make(chan struct{})
	churnDone := make(chan struct{})
	var migrations atomic.Uint64
	go func() {
		defer close(churnDone)
		owner := "n2"
		systems := map[string]*aas.System{"n1": sys1, "n2": sys2}
		for {
			select {
			case <-stop:
				return
			default:
			}
			target := "n1"
			if owner == "n1" {
				target = "n2"
			}
			if err := systems[owner].Migrate("Probe", netsim.NodeID(target)); err != nil {
				log.Fatalf("E21: migration %s -> %s: %v", owner, target, err)
			}
			owner = target
			migrations.Add(1)
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Drive traced calls until the churn has crossed the component over the
	// link many times; every call must succeed. The driver is paced so the
	// whole run's spans fit inside the ring recorders — this experiment
	// audits every tree, so no span may be evicted before reassembly.
	const (
		minCalls      = 1500
		minMigrations = 60
	)
	calls := 0
	t0 := time.Now()
	for calls < minCalls || migrations.Load() < minMigrations {
		if _, err := probe.Call(ctx, "get", fmt.Sprintf("k%d", calls)); err != nil {
			log.Fatalf("E21 FAILED: call %d errored under churn: %v", calls, err)
		}
		calls++
		time.Sleep(200 * time.Microsecond)
	}
	close(stop)
	<-churnDone
	elapsed := time.Since(t0)
	rate := float64(migrations.Load()) / elapsed.Seconds()

	// Let in-flight replies land and the trailing spans reach the rings.
	if err := sys1.Bus().WaitIdle(ctx); err != nil {
		log.Fatal(err)
	}
	if err := sys2.Bus().WaitIdle(ctx); err != nil {
		log.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)

	// --- Claim 1: reassemble every driver-rooted trace across both rings. ---
	byTrace := map[int64][]aas.Span{}
	for _, s := range append(sys1.Spans(), sys2.Spans()...) {
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}
	var (
		trees, crossNode, local, maxHops int
		queueNs, serviceNs               int64
		servedOn                         = map[string]int{}
	)
	for trace, spans := range byTrace {
		var root, server *aas.Span
		byID := map[uint32]*aas.Span{}
		for i := range spans {
			s := &spans[i]
			byID[s.ID] = s
			switch s.Kind {
			case aas.SpanClient:
				if root != nil {
					log.Fatalf("E21 FAILED: trace %#x has two client roots", trace)
				}
				root = s
			case aas.SpanServer:
				if server != nil {
					log.Fatalf("E21 FAILED: trace %#x served twice", trace)
				}
				server = s
			}
		}
		if root == nil || root.Op != "get" {
			continue // warm-up remnants or partial trailing work
		}
		trees++
		if root.Parent != 0 || root.Outcome != aas.SpanOK {
			log.Fatalf("E21 FAILED: root span malformed: %+v", *root)
		}
		for i := range spans {
			if s := &spans[i]; s.Parent != 0 && byID[s.Parent] == nil {
				log.Fatalf("E21 FAILED: trace %#x span %d orphaned (parent %d missing)",
					trace, s.ID, s.Parent)
			}
		}
		if server == nil {
			log.Fatalf("E21 FAILED: trace %#x has no server span: %+v", trace, spans)
		}
		servedOn[server.Dst]++
		// Walk the server span's ancestry: it must reach the client root
		// through forward spans only — one per node the call hopped through
		// while chasing the migrating component.
		hops := 0
		cur := byID[server.Parent]
		for cur != nil && cur != root {
			if cur.Kind != aas.SpanForward {
				log.Fatalf("E21 FAILED: trace %#x server ancestry crosses a %d-kind span", trace, cur.Kind)
			}
			hops++
			if hops > len(spans) {
				log.Fatalf("E21 FAILED: trace %#x has a parent cycle", trace)
			}
			if byID[cur.Parent] == root && cur.Src != "n1" {
				log.Fatalf("E21 FAILED: first forward hop src %q, want the driver node n1", cur.Src)
			}
			cur = byID[cur.Parent]
		}
		if cur != root {
			log.Fatalf("E21 FAILED: trace %#x server span does not chain to the root", trace)
		}
		if hops > maxHops {
			maxHops = hops
		}
		if hops > 0 {
			crossNode++
		} else {
			local++
		}
		// --- Claim 2: queue/service split, nested in the client interval. ---
		service := server.End - server.Start
		if server.Queue < 0 || service < 0 {
			log.Fatalf("E21 FAILED: negative queue/service split: %+v", *server)
		}
		if total := root.End - root.Start; service > total {
			log.Fatalf("E21 FAILED: service %dns exceeds the client's %dns end-to-end", service, total)
		}
		queueNs += server.Queue
		serviceNs += service
	}
	if trees < minCalls {
		log.Fatalf("E21 FAILED: reassembled %d trees from %d calls — spans were lost", trees, calls)
	}
	if crossNode == 0 || local == 0 {
		log.Fatalf("E21 FAILED: churn never split the traffic (cross-node %d, local %d)", crossNode, local)
	}

	fmt.Printf("%d traced calls under %d migrations (%.0f/sec): every span tree reassembled\n",
		calls, migrations.Load(), rate)
	fmt.Printf("tree shapes: %d cross-node (client -> forward -> server, deepest %d hops), %d local (client -> server); served on %v\n",
		crossNode, maxHops, local, servedOn)
	fmt.Printf("server-side attribution: mean queue wait %v, mean service %v\n",
		(time.Duration(queueNs) / time.Duration(trees)).Round(time.Microsecond),
		(time.Duration(serviceNs) / time.Duration(trees)).Round(time.Microsecond))

	// --- Claim 3: both nodes' unified snapshots balance after the run. ---
	if rate < 40 {
		log.Fatalf("E21 FAILED: churn sustained only %.0f migrations/sec, want >= 40", rate)
	}
	for _, id := range []string{"n1", "n2"} {
		snap := h.Node(id).Telemetry()
		if snap.Bus.Sent != snap.Bus.Delivered+snap.Bus.Dropped+snap.Bus.Held {
			log.Fatalf("E21 FAILED: %s conservation violated: %+v", id, snap.Bus)
		}
		fmt.Printf("%s snapshot: sent=%d delivered=%d dropped=%d held=%d spans=%d lost=%d links=%d (wire v%d)\n",
			id, snap.Bus.Sent, snap.Bus.Delivered, snap.Bus.Dropped, snap.Bus.Held,
			snap.Spans.Recorded, snap.Spans.Lost, len(snap.Links), snap.Links[0].WireVersion)
	}
}
