package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"sync"

	aas "repro"
)

// kv is the stateful workhorse component used by several experiments.
type kv struct {
	mu   sync.Mutex
	Data map[string]string
	Tag  string
}

func newKV(tag string) *kv { return &kv{Data: map[string]string{}, Tag: tag} }

func (k *kv) Handle(op string, args []any) ([]any, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	switch op {
	case "put":
		k.Data[args[0].(string)] = args[1].(string)
		return []any{"ok"}, nil
	case "get":
		return []any{k.Data[args[0].(string)], k.Tag}, nil
	default:
		return nil, fmt.Errorf("kv: unknown op %s", op)
	}
}

func (k *kv) Snapshot() ([]byte, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	return json.Marshal(k.Data)
}

func (k *kv) Restore(b []byte) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	return json.Unmarshal(b, &k.Data)
}

// front calls through its bound "get" requirement.
type front struct{ caller aas.Caller }

func (f *front) SetCaller(c aas.Caller) { f.caller = c }
func (f *front) Handle(op string, args []any) ([]any, error) {
	return f.caller.Call("get", args...)
}

const kvADL = `
system Bench {
  component Front {
    provide fetch(key) -> (value)
    require get(key) -> (value)
  }
  component Store {
    provide get(key) -> (value)
    provide put(key, value) -> (status)
    property statefulness = "stateful"
  }
  connector Link { kind rpc }
  bind Front.get -> Store.get via Link
}
`

// startKVSystem assembles the two-component fixture and returns the system
// plus its registry.
func startKVSystem() (*aas.System, *aas.Registry) {
	reg := aas.NewRegistry()
	reg.MustRegister("Store", "1.0", nil, func() any { return newKV("v1") })
	reg.MustRegister("StoreV2", "2.0", nil, func() any { return newKV("v2") })
	reg.MustRegister("Front", "1.0", nil, func() any { return &front{} })
	sys, err := aas.Load(kvADL, aas.Options{Registry: reg.Registry})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		log.Fatal(err)
	}
	return sys, reg
}
