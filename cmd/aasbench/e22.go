package main

import (
	"context"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	aas "repro"

	"repro/internal/registry"
)

// E22: the elastic cluster plane under churn. Act 1 builds a four-node
// cluster the production way — one seed address, gossip completes the mesh —
// runs the E16 stateful workload with warm-standby replication, then kills
// the Store's host mid-flight and measures the failover blackout: the time
// from the kill until the promoted follower serves again, with the restored
// counter equal to every completed call (zero state mismatches). Act 2
// starts all services on one node, turns the load-driven placers on, joins a
// fresh node and measures how long until rebalancing hands it work — under
// continuous load with zero call errors.

func runE22() {
	e22Failover()
	e22ScaleOut()
}

func e22Failover() {
	mkReg := func(string) *registry.Registry {
		reg := &registry.Registry{}
		if err := reg.Register(registry.Entry{Name: "Front", Version: registry.Version{Major: 1},
			New: func() any { return &e16Front{} }}); err != nil {
			log.Fatal(err)
		}
		if err := reg.Register(registry.Entry{Name: "Store", Version: registry.Version{Major: 1},
			New: func() any { return &e16Store{} }}); err != nil {
			log.Fatal(err)
		}
		return reg
	}
	t0 := time.Now()
	h, err := aas.StartCluster(context.Background(), aas.ClusterSpec{
		ADL:       e16ADL,
		Nodes:     []string{"n1", "n2", "n3", "n4"},
		Placement: map[string]string{"Front": "n1", "Store": "n2"},
		Registry:  mkReg,
		Cluster: func(string) aas.ClusterOptions {
			return aas.ClusterOptions{Heartbeat: 50 * time.Millisecond,
				FailAfter: 300 * time.Millisecond, SuspectAfter: 300 * time.Millisecond}
		},
		SeedJoin: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer h.Close()
	fmt.Printf("4-node seed-list join converged in %v (1 seed address, gossip discovered the rest)\n",
		time.Since(t0).Round(time.Millisecond))

	for _, id := range h.Nodes() {
		if err := h.Node(id).EnableFailover(); err != nil {
			log.Fatal(err)
		}
	}
	rep := h.Node("n2").StartReplicator(aas.ReplicatorOptions{Interval: 50 * time.Millisecond})
	defer rep.Stop()

	sys1 := h.System("n1")
	const (
		clients = 4
		window  = 1500 * time.Millisecond
	)
	var errs atomic.Uint64
	lats := e16Drive(sys1, clients, window, &errs)
	fmt.Println("cross-node call with 50ms warm-standby replication riding the link:")
	fmt.Printf("%-30s %10s %10s %10s %10s %12s\n", "condition", "p50", "p95", "p99", "max", "calls/sec")
	e16Report("steady state (replicated)", lats, window)
	if errs.Load() != 0 {
		log.Fatalf("E22 FAILED: %d call errors in steady state", errs.Load())
	}
	completed := uint64(len(lats))

	// Settle: ship the final state and wait until the follower acked it and
	// every survivor gossip-learned who the follower is.
	rep.ReplicateNow()
	deadline := time.Now().Add(10 * time.Second)
	follower := ""
	for follower == "" {
		if time.Now().After(deadline) {
			log.Fatal("E22 FAILED: replication never settled")
		}
		snap := h.Node("n2").Telemetry()
		if len(snap.Replication) == 1 && snap.Replication[0].AckedSeq > 0 &&
			snap.Replication[0].AckedSeq == snap.Replication[0].ShippedSeq {
			follower = snap.Replication[0].Follower
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, id := range []string{"n1", "n3", "n4"} {
		for {
			m, ok := h.Node(id).Member("n2")
			if ok && len(m.Components) == 1 && m.Components[0].Follower == follower {
				break
			}
			if time.Now().After(deadline) {
				log.Fatal("E22 FAILED: follower assignment never gossiped")
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Kill the host and measure the blackout until the promoted follower
	// serves the first post-kill call.
	front := sys1.Client("Front")
	kill := time.Now()
	h.Kill("n2")
	for {
		if _, err := front.Call(context.Background(), "fetch", "probe"); err == nil {
			completed++
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("E22 FAILED: service never recovered after the kill")
		}
		time.Sleep(2 * time.Millisecond)
	}
	blackout := time.Since(kill)

	out, err := sys1.Client("Store").Call(context.Background(), "count")
	if err != nil {
		log.Fatalf("E22: count: %v", err)
	}
	served := uint64(out[0].(int))
	fmt.Printf("\nhost killed -> follower %s promoted warm: blackout %v (dominated by the 300ms refute window)\n",
		follower, blackout.Round(time.Millisecond))
	fmt.Printf("calls completed: %d, store served: %d\n", completed, served)
	if served != completed {
		log.Fatalf("E22 FAILED: state mismatch after warm failover (served %d != completed %d)", served, completed)
	}
	for _, id := range h.Nodes() {
		if lost := h.System(id).Events().History(aas.EvStateLost); len(lost) != 0 {
			log.Fatalf("E22 FAILED: EvStateLost on %s during a warm failover", id)
		}
	}
	fmt.Println("zero mismatches, zero EvStateLost: the standby carried every acked call")
}

const e22SvcADL = `
system Elastic {
  component SvcA { provide ping(x) -> (r) }
  component SvcB { provide ping(x) -> (r) }
  component SvcC { provide ping(x) -> (r) }
  component SvcD { provide ping(x) -> (r) }
}
`

type e22Svc struct{}

func (e22Svc) Handle(op string, args []any) ([]any, error) { return []any{args[0]}, nil }

func e22ScaleOut() {
	mkReg := func(string) *registry.Registry {
		reg := &registry.Registry{}
		for _, name := range []string{"SvcA", "SvcB", "SvcC", "SvcD"} {
			if err := reg.Register(registry.Entry{Name: name, Version: registry.Version{Major: 1},
				New: func() any { return e22Svc{} }}); err != nil {
				log.Fatal(err)
			}
		}
		return reg
	}
	h, err := aas.StartCluster(context.Background(), aas.ClusterSpec{
		ADL:   e22SvcADL,
		Nodes: []string{"n1", "n2"},
		Placement: map[string]string{
			"SvcA": "n1", "SvcB": "n1", "SvcC": "n1", "SvcD": "n1",
		},
		Registry: mkReg,
		Cluster: func(string) aas.ClusterOptions {
			return aas.ClusterOptions{Heartbeat: 50 * time.Millisecond,
				FailAfter: 300 * time.Millisecond, SuspectAfter: 300 * time.Millisecond}
		},
		SeedJoin: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer h.Close()
	for _, id := range h.Nodes() {
		defer h.Node(id).StartPlacer(aas.PlacerOptions{Interval: 50 * time.Millisecond}).Stop()
	}

	// Continuous load against every service from the second node while the
	// topology churns underneath it.
	var calls, errs atomic.Uint64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		svcs := []string{"SvcA", "SvcB", "SvcC", "SvcD"}
		sys2 := h.System("n2")
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			svc := svcs[i%len(svcs)]
			token := fmt.Sprintf("t%d", i)
			if out, err := sys2.Client(svc).Call(context.Background(), "ping", token); err != nil || out[0] != token {
				errs.Add(1)
			} else {
				calls.Add(1)
			}
		}
	}()

	fmt.Println("\nall 4 services start on n1; placers rebalance by observed load:")
	joined := time.Now()
	if err := h.Add("n3"); err != nil {
		log.Fatalf("E22: add n3: %v", err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for len(h.System("n3").LocalComponents()) == 0 {
		if time.Now().After(deadline) {
			log.Fatal("E22 FAILED: rebalancing never reached the fresh node")
		}
		time.Sleep(10 * time.Millisecond)
	}
	toFirst := time.Since(joined)
	close(stop)
	<-done

	for _, id := range h.Nodes() {
		fmt.Printf("  %-3s hosts %v\n", id, h.System(id).LocalComponents())
	}
	fmt.Printf("fresh n3 received work %v after joining; %d calls, %d errors during the churn\n",
		toFirst.Round(time.Millisecond), calls.Load(), errs.Load())
	if errs.Load() != 0 {
		log.Fatal("E22 FAILED: calls lost while rebalancing onto the fresh node")
	}
	fmt.Println("zero lost calls: live migration kept every binding serving through the moves")
}
