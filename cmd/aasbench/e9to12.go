package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/adl"
	"repro/internal/aspects"
	"repro/internal/bus"
	"repro/internal/clock"
	"repro/internal/connector"
	"repro/internal/control"
	"repro/internal/filters"
	"repro/internal/flo"
	"repro/internal/inject"
	"repro/internal/lts"
	"repro/internal/metaobj"
	"repro/internal/registry"
	"repro/internal/strategy"
)

// chainLTS builds a request/reply chain automaton with 2n states.
func chainLTS(name string, n int, oneShot bool) *lts.LTS {
	b := lts.NewBuilder(name).Initial("s0")
	for i := 0; i < n; i++ {
		req, rsp := lts.Recv("req"), lts.SendAct("rsp")
		if name == "client" {
			req, rsp = lts.SendAct("req"), lts.Recv("rsp")
		}
		from := fmt.Sprintf("s%d", 2*i)
		mid := fmt.Sprintf("s%d", 2*i+1)
		to := fmt.Sprintf("s%d", (2*i+2)%(2*n))
		if oneShot && i == n-1 {
			to = "end"
		}
		b.Trans(from, req, mid)
		b.Trans(mid, rsp, to)
	}
	return b.MustBuild()
}

// runE9 measures LTS composition-correctness analysis cost vs model size
// and shows deadlock detection on incompatible pairs.
func runE9() {
	fmt.Printf("%-10s %14s %14s %12s %12s\n",
		"states", "product states", "check time", "compatible", "trace len")
	for _, n := range []int{2, 8, 32, 128, 512} {
		client := chainLTS("client", n, false)
		server := chainLTS("server", n, false)
		start := time.Now()
		rep := lts.CheckCompat(client, server)
		elapsed := time.Since(start)
		fmt.Printf("%-10d %14d %14v %12v %12d\n",
			client.NumStates(), rep.ProductStates, elapsed, rep.Compatible, len(rep.Trace))
	}
	// Incompatible pair: looping client against a one-shot server.
	client := chainLTS("client", 4, false)
	oneShot := chainLTS("server", 4, true)
	rep := lts.CheckCompat(client, oneShot)
	fmt.Printf("\nincompatible pair detected: compatible=%v deadlock=%s after %d steps\n",
		rep.Compatible, rep.DeadlockState, len(rep.Trace))
}

// runE10 measures FLO/C rule enforcement overhead and static cycle
// analysis cost.
func runE10() {
	const events = 200000
	fmt.Printf("%-12s %14s %16s\n", "rules", "ns/observe", "cycle check")
	for _, n := range []int{1, 16, 64, 256} {
		rules := make([]flo.Rule, 0, n)
		for i := 0; i < n; i++ {
			rules = append(rules, flo.Rule{
				Trigger: fmt.Sprintf("op%d", i), Op: flo.ImpliesLater,
				Target: fmt.Sprintf("ack%d", i)})
		}
		startChk := time.Now()
		if err := flo.CheckRules(rules); err != nil {
			log.Fatal(err)
		}
		chk := time.Since(startChk)
		eng, err := flo.NewEngine(rules)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		for i := 0; i < events; i++ {
			eng.Observe("op0")
			eng.Observe("ack0")
		}
		per := time.Since(start).Nanoseconds() / (2 * events)
		fmt.Printf("%-12d %14d %16v\n", n, per, chk)
	}
	// Cycle rejection.
	cyc, _ := flo.ParseRules("a implies b\nb implies c\nc implies a")
	err := flo.CheckRules(cyc)
	fmt.Printf("\ncycle detection: %v\n", err)
}

// runE11 prints the interface-evolution compliance matrix: which
// modifications keep "the compliancy with previous versions".
func runE11() {
	base := registry.Interface{Name: "svc", Version: registry.Version{Major: 1},
		Ops: []registry.Signature{
			{Name: "get", Params: []registry.TypeName{"id"}, Results: []registry.TypeName{"frame"}},
			{Name: "put", Params: []registry.TypeName{"id", "frame"}},
		}}

	cases := []struct {
		name string
		mod  func() registry.Interface
	}{
		{"identical", func() registry.Interface { return base }},
		{"add operation", func() registry.Interface {
			n := base
			n.Ops = append(append([]registry.Signature{}, base.Ops...),
				registry.Signature{Name: "stat"})
			return n
		}},
		{"extend results (suffix)", func() registry.Interface {
			n := base
			n.Ops = []registry.Signature{
				{Name: "get", Params: []registry.TypeName{"id"},
					Results: []registry.TypeName{"frame", "meta"}},
				base.Ops[1]}
			return n
		}},
		{"remove operation", func() registry.Interface {
			n := base
			n.Ops = base.Ops[:1]
			return n
		}},
		{"change parameter type", func() registry.Interface {
			n := base
			n.Ops = []registry.Signature{
				{Name: "get", Params: []registry.TypeName{"uuid"},
					Results: []registry.TypeName{"frame"}},
				base.Ops[1]}
			return n
		}},
		{"reorder results", func() registry.Interface {
			n := base
			n.Ops = []registry.Signature{
				{Name: "get", Params: []registry.TypeName{"id"},
					Results: []registry.TypeName{"meta", "frame"}},
				base.Ops[1]}
			return n
		}},
	}
	fmt.Printf("%-26s %10s %s\n", "modification", "compliant", "verdicts")
	for _, c := range cases {
		rep := registry.CheckCompliance(base, c.mod())
		fmt.Printf("%-26s %10v %v\n", c.name, rep.Compliant, rep.Verdicts)
	}
}

// runE12 exercises each of the ten adaptation approaches of §2 on an
// equivalent micro-task and reports (a) the cost of applying the
// adaptation and (b) the steady-state per-operation overhead it adds.
func runE12() {
	const ops = 100000
	fmt.Printf("%-38s %14s %14s\n", "approach (§2)", "apply cost", "ns/op after")

	report := func(name string, apply time.Duration, perOp int64) {
		fmt.Printf("%-38s %14v %14d\n", name, apply, perOp)
	}

	// 1. Composition framework: plug a replacement component into a slot
	// (registry lookup + factory instantiation).
	var reg registry.Registry
	if err := reg.Register(registry.Entry{Name: "slot", Version: registry.Version{Major: 1},
		New: func() any { return newKV("v1") }}); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	e, err := reg.Lookup("slot")
	if err != nil {
		log.Fatal(err)
	}
	comp := e.New().(*kv)
	apply := time.Since(start)
	start = time.Now()
	for i := 0; i < ops; i++ {
		if _, err := comp.Handle("get", []any{"k"}); err != nil {
			log.Fatal(err)
		}
	}
	report("1 composition framework (plug)", apply, time.Since(start).Nanoseconds()/ops)

	// 2. Strategy pattern: guarded switch on a metric snapshot.
	sel := strategy.NewSelector[control.Controller](clock.Real{}, 0)
	if err := sel.Register("a", &control.Static{Value: 1}); err != nil {
		log.Fatal(err)
	}
	if err := sel.Register("b", &control.Static{Value: 2}); err != nil {
		log.Fatal(err)
	}
	if err := sel.AddGuard(strategy.Guard{Name: "g", When: func(m strategy.Metrics) bool {
		return m["load"] > 0.5
	}, Use: "b"}); err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	sel.Evaluate(strategy.Metrics{"load": 0.9})
	apply = time.Since(start)
	start = time.Now()
	for i := 0; i < ops; i++ {
		_, _ = sel.Current()
	}
	report("2 strategy pattern (switch)", apply, time.Since(start).Nanoseconds()/ops)

	// 3. Aspect-oriented programming: attach an aspect, dynamic dispatch.
	w := aspects.NewWeaver()
	h := w.Weave(func(inv *aspects.Invocation) (any, error) { return nil, nil })
	start = time.Now()
	if err := w.Attach(aspects.Aspect{Name: "log", Advice: []aspects.Advice{{
		Before: func(*aspects.Invocation) error { return nil }}}}); err != nil {
		log.Fatal(err)
	}
	apply = time.Since(start)
	inv := &aspects.Invocation{Component: "c", Op: "op"}
	start = time.Now()
	for i := 0; i < ops; i++ {
		if _, err := h(inv); err != nil {
			log.Fatal(err)
		}
	}
	report("3 aspects (runtime weave)", apply, time.Since(start).Nanoseconds()/ops)

	// 4. Composition filters: attach a transform filter.
	var set filters.Set
	start = time.Now()
	if err := set.Attach(filters.Input, filters.Transform{FilterName: "t", Fn: func(*bus.Message) {}}); err != nil {
		log.Fatal(err)
	}
	apply = time.Since(start)
	m := &bus.Message{Op: "op"}
	start = time.Now()
	for i := 0; i < ops; i++ {
		set.Eval(filters.Input, m)
	}
	report("4 composition filters (attach)", apply, time.Since(start).Nanoseconds()/ops)

	// 5. Connectors: rebind to a new target (measured in E3 end to end;
	// here the SetTargets operation itself).
	b := bus.New()
	if _, err := b.Attach("t1", 16); err != nil {
		log.Fatal(err)
	}
	conn, err := connector.New("c", adl.KindRPC, b, nil)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	conn.SetTargets([]bus.Address{"t1"})
	apply = time.Since(start)
	start = time.Now()
	for i := 0; i < ops; i++ {
		_ = conn.Targets()
	}
	report("5 connectors (rebind)", apply, time.Since(start).Nanoseconds()/ops)

	// 6. Composition paths: select a service chain from predefined stages.
	path := [][]string{{"extract-hq", "extract-lq"}, {"code-h264", "code-mjpeg"}, {"send-tcp", "send-udp"}}
	start = time.Now()
	var chosen []string
	for _, stage := range path {
		chosen = append(chosen, stage[1]) // pick per current context
	}
	apply = time.Since(start)
	start = time.Now()
	for i := 0; i < ops; i++ {
		_ = len(chosen)
	}
	report("6 composition paths (select)", apply, time.Since(start).Nanoseconds()/ops)

	// 7. Interaction patterns: insert a wrapper into a meta-object chain.
	chain, err := metaobj.Compose(&metaobj.MetaObject{Name: "base", Props: metaobj.Modificatory,
		Invoke: func(mm *bus.Message, next func(*bus.Message) error) error { return next(mm) }})
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	if err := chain.Insert(&metaobj.MetaObject{Name: "new", Props: metaobj.Modificatory,
		Invoke: func(mm *bus.Message, next func(*bus.Message) error) error { return next(mm) }}); err != nil {
		log.Fatal(err)
	}
	apply = time.Since(start)
	start = time.Now()
	for i := 0; i < ops; i++ {
		if err := chain.Execute(m, func(*bus.Message) error { return nil }); err != nil {
			log.Fatal(err)
		}
	}
	report("7 interaction patterns (insert)", apply, time.Since(start).Nanoseconds()/ops)

	// 8. Adaptive middleware: retune the platform controller.
	pid := &control.PID{Kp: 1, Ki: 0.1}
	start = time.Now()
	pid.Kp, pid.Ki = 2, 0.2 // set-point/gain adaptation
	apply = time.Since(start)
	start = time.Now()
	for i := 0; i < ops; i++ {
		pid.Update(1, 0.5, time.Millisecond)
	}
	report("8 adaptive middleware (retune)", apply, time.Since(start).Nanoseconds()/ops)

	// 9. Injectors: install a scoped communication injector.
	b2 := bus.New()
	if _, err := b2.Attach("dst", ops+1); err != nil {
		log.Fatal(err)
	}
	inj, err := inject.New("i", inject.Scope{Dst: []bus.Address{"dst"}},
		inject.Behavior{TransformFn: func(*bus.Message) {}})
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	inject.Install(b2, inj)
	apply = time.Since(start)
	start = time.Now()
	for i := 0; i < ops; i++ {
		if err := b2.Send(bus.Message{Kind: bus.Event, Src: "s", Dst: "dst"}); err != nil {
			log.Fatal(err)
		}
	}
	report("9 injectors (install)", apply, time.Since(start).Nanoseconds()/ops)

	// 10. Adaptive component interfaces: meta-level observe+modify of base
	// executions (weaver enable/disable as the AJ-style meta protocol).
	w2 := aspects.NewWeaver()
	if err := w2.Attach(aspects.Aspect{Name: "meta", Advice: []aspects.Advice{{
		Around: func(inv *aspects.Invocation, next aspects.Handler) (any, error) {
			return next(inv)
		}}}}); err != nil {
		log.Fatal(err)
	}
	h2 := w2.Weave(func(*aspects.Invocation) (any, error) { return nil, nil })
	start = time.Now()
	if err := w2.SetEnabled("meta", true); err != nil {
		log.Fatal(err)
	}
	apply = time.Since(start)
	start = time.Now()
	for i := 0; i < ops; i++ {
		if _, err := h2(inv); err != nil {
			log.Fatal(err)
		}
	}
	report("10 adaptive interfaces (metaify)", apply, time.Since(start).Nanoseconds()/ops)
}
