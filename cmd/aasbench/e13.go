package main

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/bus"
)

// E13: sharded data-plane throughput. The bus routes every message through
// a lock-free routing snapshot plus one per-destination lock, so aggregate
// Send throughput should hold (or grow) as senders are added, including
// while the control plane keeps pausing/redirecting/resuming channels. The
// pre-refactor bus serialized all of this on one global mutex.
func runE13() {
	const perSender = 200_000
	fmt.Println("goroutines sending to distinct destinations, messages/sec aggregate:")
	fmt.Printf("%-10s %14s %14s\n", "senders", "steady", "reconfiguring")
	for _, workers := range []int{1, 2, 4, 8} {
		steady := e13Throughput(workers, perSender, false)
		churn := e13Throughput(workers, perSender, true)
		fmt.Printf("%-10d %14.0f %14.0f\n", workers, steady, churn)
	}
}

// e13Throughput runs workers concurrent senders, each with a private
// destination, and returns aggregate messages/sec. With reconfigure set, a
// control goroutine concurrently pauses, redirects and resumes every
// destination in a loop the whole time.
func e13Throughput(workers, perSender int, reconfigure bool) float64 {
	b := bus.New()
	eps := make([]*bus.Endpoint, workers)
	for i := range eps {
		ep, err := b.Attach(bus.Address(fmt.Sprintf("dst-%d", i)), 4096)
		if err != nil {
			panic(err)
		}
		eps[i] = ep
	}

	stop := make(chan struct{})
	var ctlWG sync.WaitGroup
	if reconfigure {
		ctlWG.Add(1)
		go func() {
			defer ctlWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				dst := bus.Address(fmt.Sprintf("dst-%d", i%workers))
				alias := bus.Address(fmt.Sprintf("alias-%d", i%workers))
				b.Pause(dst)
				_ = b.Redirect(alias, dst)
				_ = b.Redirect(alias, "")
				_, _ = b.Resume(dst)
			}
		}()
	}

	var wg sync.WaitGroup
	started := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := bus.Message{Kind: bus.Event, Op: "tick",
				Src: bus.Address(fmt.Sprintf("src-%d", w)),
				Dst: bus.Address(fmt.Sprintf("dst-%d", w))}
			ep := eps[w]
			drain := func() {
				for {
					if _, ok := ep.TryReceive(); !ok {
						return
					}
				}
			}
			for i := 0; i < perSender; i++ {
				for {
					err := b.Send(m)
					if err == nil {
						break
					}
					if errors.Is(err, bus.ErrMailboxFull) {
						// Backpressure: a resume just flushed a long parked
						// run into the mailbox; consume it and retry.
						drain()
						continue
					}
					panic(err)
				}
				if i%64 == 0 {
					drain()
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(started)
	close(stop)
	ctlWG.Wait()
	return float64(workers*perSender) / elapsed.Seconds()
}
