package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"log"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	aas "repro"

	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/wire"
)

// E18: the typed zero-alloc call surface under distribution stress. Two
// cluster nodes over TCP loopback host a stateful typed KV Store, driven
// from n1 through two compiled ClientOf handles — get via the derived
// scalar codec, put via a TypedRequest struct carrying its own preencoder —
// while the component live-migrates between the nodes continuously.
//
// Every put writes a unique key and every key is read back through the
// typed get handle after the churn stops. The experiment asserts zero call
// errors across the whole run and exact state preservation: the store's
// put counter equals the number of issued puts and each key returns exactly
// the value last written, no matter how many snapshot/restore handoffs the
// component went through mid-call.
const e18ADL = `
system TypedDist {
  component Store {
    provide get(key) -> (value)
    provide put(key, value) -> (status)
    provide stats() -> (puts)
  }
}
`

// e18Put is the struct request of the typed put path: AppendArgs preencodes
// the two-string argument list in wire.AppendValues form for peer-link
// forwarding, CallArgs materializes the legacy boxed form.
type e18Put struct{ Key, Val string }

func (p *e18Put) AppendArgs(dst []byte) ([]byte, error) {
	dst = binary.AppendUvarint(dst, 2)
	dst, err := wire.AppendValue(dst, p.Key)
	if err != nil {
		return nil, err
	}
	return wire.AppendValue(dst, p.Val)
}

func (p *e18Put) CallArgs() []any { return []any{p.Key, p.Val} }

// e18Store is a typed KV: HandleTyped serves the fast path in place, Handle
// keeps the untyped convention alive for remote/boxed calls, and the full
// map travels in snapshots so migrations are exact.
type e18Store struct {
	mu   sync.Mutex
	data map[string]string
	puts int64
}

func (s *e18Store) init() {
	if s.data == nil {
		s.data = make(map[string]string)
	}
}

func (s *e18Store) HandleTyped(op string, req, resp any) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.init()
	switch op {
	case "get":
		if k, ok := req.(*string); ok {
			*resp.(*string) = s.data[*k]
			return nil
		}
	case "put":
		if p, ok := req.(*e18Put); ok {
			s.data[p.Key] = p.Val
			s.puts++
			*resp.(*string) = "ok"
			return nil
		}
	}
	return aas.ErrUntypedOp
}

func (s *e18Store) Handle(op string, args []any) ([]any, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.init()
	switch op {
	case "get":
		return []any{s.data[args[0].(string)]}, nil
	case "put":
		s.data[args[0].(string)] = args[1].(string)
		s.puts++
		return []any{"ok"}, nil
	case "stats":
		return []any{s.puts}, nil
	}
	return nil, fmt.Errorf("e18store: unknown op %s", op)
}

type e18State struct {
	Data map[string]string `json:"data"`
	Puts int64             `json:"puts"`
}

func (s *e18Store) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.init()
	return json.Marshal(e18State{Data: s.data, Puts: s.puts})
}

func (s *e18Store) Restore(b []byte) error {
	var st e18State
	if err := json.Unmarshal(b, &st); err != nil {
		return err
	}
	s.mu.Lock()
	s.data, s.puts = st.Data, st.Puts
	s.mu.Unlock()
	return nil
}

func runE18() {
	mkReg := func(string) *registry.Registry {
		reg := &registry.Registry{}
		if err := reg.Register(registry.Entry{Name: "Store", Version: registry.Version{Major: 1},
			New: func() any { return &e18Store{} }}); err != nil {
			log.Fatal(err)
		}
		return reg
	}
	h, err := aas.StartCluster(context.Background(), aas.ClusterSpec{
		ADL:       e18ADL,
		Nodes:     []string{"n1", "n2"},
		Placement: map[string]string{"Store": "n2"},
		Registry:  mkReg,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer h.Close()
	sys1, sys2 := h.System("n1"), h.System("n2")

	// Two typed handles share one compiled binding; migrations repoint both.
	getH := aas.ClientOf[string, string](sys1, "Store").With(aas.WithDeadline(5 * time.Second))
	putH := aas.ClientOf[e18Put, string](sys1, "Store").With(aas.WithDeadline(5 * time.Second))

	// Migration churn for the whole write phase.
	stop := make(chan struct{})
	churnDone := make(chan struct{})
	var migrations atomic.Uint64
	go func() {
		defer close(churnDone)
		owner := "n2"
		systems := map[string]*aas.System{"n1": sys1, "n2": sys2}
		for {
			select {
			case <-stop:
				return
			default:
			}
			target := "n1"
			if owner == "n1" {
				target = "n2"
			}
			if err := systems[owner].Migrate("Store", netsim.NodeID(target)); err != nil {
				log.Fatalf("E18: migration %s -> %s: %v", owner, target, err)
			}
			owner = target
			migrations.Add(1)
			time.Sleep(20 * time.Millisecond)
		}
	}()

	// Write phase: concurrent typed puts with unique keys, interleaved with
	// typed reads of already-written keys, all through the migration churn.
	// Writers run at least minPuts calls each and keep going until the churn
	// goroutine has completed minMigrations handoffs, so every run really
	// crosses ownership changes mid-stream.
	const (
		writers       = 4
		minPuts       = 500
		minMigrations = 25
	)
	ctx := context.Background()
	var (
		wg       sync.WaitGroup
		callErrs atomic.Uint64
		putLats  = make([][]time.Duration, writers)
		written  = make([]int, writers)
	)
	t0 := time.Now()
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < minPuts || migrations.Load() < minMigrations; i++ {
				written[w] = i + 1
				key := fmt.Sprintf("w%d-k%d", w, i)
				s0 := time.Now()
				status, err := putH.Call(ctx, "put", e18Put{Key: key, Val: key + "-v"})
				if err != nil || status != "ok" {
					callErrs.Add(1)
					log.Printf("E18: put %s: status=%q err=%v", key, status, err)
					continue
				}
				putLats[w] = append(putLats[w], time.Since(s0))
				// Read back a key written a few iterations ago through the
				// typed get handle — it must already be durable across
				// whatever migrations happened in between.
				if i >= 8 {
					back := fmt.Sprintf("w%d-k%d", w, i-8)
					if got, err := getH.Call(ctx, "get", back); err != nil || got != back+"-v" {
						callErrs.Add(1)
						log.Printf("E18: readback %s: got=%q err=%v", back, got, err)
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-churnDone
	elapsed := time.Since(t0)

	var all []time.Duration
	for _, l := range putLats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	totalPuts := 0
	for _, n := range written {
		totalPuts += n
	}
	fmt.Printf("typed calls under migration churn: %d writers, %d puts (+readbacks) in %v\n",
		writers, totalPuts, elapsed.Round(time.Millisecond))
	if len(all) > 0 {
		fmt.Printf("typed put latency: p50=%v p99=%v\n",
			all[len(all)/2].Round(time.Microsecond), all[len(all)*99/100].Round(time.Microsecond))
	}
	fmt.Printf("live migrations during the run: %d\n", migrations.Load())

	// Exact-state verification: every key holds the last written value, and
	// the put counter survived every snapshot/restore handoff.
	expected := int64(totalPuts) - int64(callErrs.Load())
	missing := 0
	for w := 0; w < writers; w++ {
		for i := 0; i < written[w]; i++ {
			key := fmt.Sprintf("w%d-k%d", w, i)
			got, err := getH.Call(ctx, "get", key)
			if err != nil {
				callErrs.Add(1)
				log.Printf("E18: verify get %s: %v", key, err)
				continue
			}
			if got != key+"-v" {
				missing++
				if missing <= 5 {
					log.Printf("E18: key %s = %q, want %q", key, got, key+"-v")
				}
			}
		}
	}
	// The put counter rode every snapshot/restore handoff; read it through
	// the untyped fallback of the same binding (stats has no typed serve).
	out, err := getH.Untyped().Call(ctx, "stats")
	if err != nil || len(out) != 1 {
		log.Fatalf("E18: stats: %v %v", out, err)
	}
	puts, _ := out[0].(int64)
	owner := h.Node("n1").Owner("Store")
	fmt.Printf("final state on %s: put counter %d (expected %d)\n", owner, puts, expected)

	if callErrs.Load() != 0 || missing != 0 || puts != expected {
		log.Fatal("E18 FAILED: typed calls lost or state diverged under migration churn")
	}
	fmt.Println("zero call errors, every key exact, put counter preserved across all migrations")
}
