package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/bus"
	"repro/internal/control"
	"repro/internal/deploy"
	"repro/internal/filters"
	"repro/internal/inject"
	"repro/internal/metaobj"
	"repro/internal/netsim"
)

// runE6 compares deployment planners and demonstrates migration toward
// shifted demand.
func runE6() {
	topo := netsim.New(1, time.Millisecond, 0)
	regions := []netsim.Region{"eu", "us", "ap"}
	for _, r := range regions {
		for i := 0; i < 4; i++ {
			if _, err := topo.AddNode(netsim.NodeID(fmt.Sprintf("%s-%d", r, i)), r, 16, i == 0); err != nil {
				log.Fatal(err)
			}
		}
	}
	for i, a := range regions {
		for _, b := range regions[i+1:] {
			topo.SetRegionLatency(a, b, 80*time.Millisecond)
		}
	}

	reqs := []deploy.Requirement{
		{Component: "gw-eu", CPU: 2, Region: "eu"},
		{Component: "gw-us", CPU: 2, Region: "us"},
		{Component: "session", CPU: 4},
		{Component: "store", CPU: 4, Colocate: []string{"session"}},
		{Component: "auth", CPU: 1, Secure: true},
		{Component: "backup", CPU: 4, Anti: []string{"store"}},
	}
	euDemand := deploy.Objective{Edges: []deploy.Edge{
		{A: "session", B: "gw-eu", Weight: 100},
		{A: "session", B: "store", Weight: 50},
		{A: "session", B: "auth", Weight: 5},
	}, WRegion: 10}

	fmt.Printf("%-22s %12s\n", "planner", "score (low=good)")
	var lsPlacement deploy.Placement
	for _, pl := range []deploy.Planner{
		deploy.Random{Seed: 7}, deploy.RoundRobin{}, deploy.Greedy{},
		deploy.LocalSearch{Seed: 7, Budget: 4000},
	} {
		p, err := pl.Plan(topo, reqs, euDemand)
		if err != nil {
			fmt.Printf("%-22s %12s (%v)\n", pl.Name(), "-", err)
			continue
		}
		score, err := deploy.Score(topo, reqs, euDemand, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %12.1f\n", pl.Name(), score)
		if pl.Name() == "greedy+local-search" {
			lsPlacement = p
		}
	}

	// Demand shifts to the US; replan and report the migration.
	usDemand := euDemand
	usDemand.Edges = []deploy.Edge{
		{A: "session", B: "gw-us", Weight: 100},
		{A: "session", B: "store", Weight: 50},
		{A: "session", B: "auth", Weight: 5},
	}
	p2, err := (deploy.LocalSearch{Seed: 7, Budget: 4000}).Plan(topo, reqs, usDemand)
	if err != nil {
		log.Fatal(err)
	}
	before, err := deploy.Score(topo, reqs, usDemand, lsPlacement)
	if err != nil {
		log.Fatal(err)
	}
	after, err := deploy.Score(topo, reqs, usDemand, p2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndemand shift eu->us: score %.1f -> %.1f after %d migrations\n",
		before, after, len(deploy.MigrationPlan(lsPlacement, p2)))
	for _, m := range deploy.MigrationPlan(lsPlacement, p2) {
		fmt.Printf("  migrate %-10s %s -> %s\n", m.Component, m.From, m.To)
	}
}

// runE7 runs the rush-hour QoS control comparison (the telecom example's
// scenario) and adds the GA-tuned PID ablation.
func runE7() {
	trace := netsim.Sum{
		netsim.Diurnal{Base: 40, Peak: 120, Period: 24 * time.Hour,
			PeakAt: 18 * time.Hour, Sharpness: 3},
		netsim.Spikes{Height: 30, Interval: 6 * time.Hour, Width: 20 * time.Minute},
	}
	const (
		targetLat = 0.050
		ctrlLat   = 0.035
		tick      = time.Second
	)
	targetHeadroom := 1 / ctrlLat

	controllers := []struct {
		name string
		mk   func() control.Controller
	}{
		{"none (static)", func() control.Controller { return &control.Static{Value: 90} }},
		{"threshold", func() control.Controller {
			return &control.Threshold{Deadband: 2, Step: 5, OutMin: 60, OutMax: 400}
		}},
		{"pid (hand-tuned)", func() control.Controller {
			return &control.PID{Kp: 0.5, Ki: 0.2, IntMax: 2000, OutMin: 60, OutMax: 400}
		}},
		{"fuzzy", func() control.Controller {
			return &control.Fuzzy{ErrScale: 30, DErrScale: 60, OutScale: 25, OutMin: 60, OutMax: 400}
		}},
	}

	// GA-tuned PID ablation: tune against the linearized headroom plant
	// (the same static capacity->headroom relation the live loop sees, at
	// rush-hour arrival), so the evolved gains transfer.
	// The 900-step horizon matters: it exposes slowly divergent gain
	// combinations (|λ| just above 1) that a short horizon would reward.
	gains, _ := control.Tune(control.TunerConfig{
		Seed: 5, Population: 24, Generations: 20, Setpoint: targetHeadroom,
		Steps: 900, Dt: tick, KpMax: 0.9, KiMax: 0.5, KdMax: 0.1, IntMax: 2000,
		NewPlant: func() control.Plant { return &headroomPlant{arrival: 160} },
	})
	controllers = append(controllers, struct {
		name string
		mk   func() control.Controller
	}{"pid (GA-tuned)", func() control.Controller {
		return &control.PID{Kp: gains.Kp, Ki: gains.Ki, Kd: gains.Kd,
			IntMax: 2000, OutMin: 60, OutMax: 400}
	}})

	fmt.Printf("%-18s %12s %14s %12s\n", "controller", "violation%", "mean lat (ms)", "mean cap")
	steps := int((24 * time.Hour) / tick)
	for _, c := range controllers {
		ctrl := c.mk()
		q := &control.ServiceQueue{Arrival: trace.At(0), MinHeadroom: 2}
		lat := q.Step(90, tick)
		violations, latSum, capSum := 0, 0.0, 0.0
		for i := 0; i < steps; i++ {
			q.Arrival = trace.At(time.Duration(i) * tick)
			u := ctrl.Update(targetHeadroom, 1/lat, tick)
			lat = q.Step(u, tick)
			if lat > targetLat {
				violations++
			}
			latSum += lat
			capSum += q.Capacity()
		}
		fmt.Printf("%-18s %11.1f%% %14.1f %12.0f\n", c.name,
			100*float64(violations)/float64(steps),
			1000*latSum/float64(steps), capSum/float64(steps))
	}
}

// runE8 measures interception mechanism scaling: composition filter chain
// length, scoped injectors, and meta-object chains.
func runE8() {
	const msgs = 200000

	fmt.Printf("%-30s %12s\n", "mechanism", "ns/message")
	// Filter chains.
	for _, n := range []int{0, 1, 4, 16, 64} {
		var set filters.Set
		var sink uint64
		for i := 0; i < n; i++ {
			if err := set.Attach(filters.Input, filters.Transform{
				FilterName: fmt.Sprintf("f%d", i), Fn: func(*bus.Message) { sink++ }}); err != nil {
				log.Fatal(err)
			}
		}
		m := &bus.Message{Op: "op", Kind: bus.Request}
		start := time.Now()
		for i := 0; i < msgs; i++ {
			set.Eval(filters.Input, m)
		}
		per := time.Since(start).Nanoseconds() / msgs
		fmt.Printf("%-30s %12d\n", fmt.Sprintf("filter chain len=%d", n), per)
	}

	// Injector on the bus path (fresh bus per measurement so mailboxes
	// start empty).
	mkBus := func(withInjector bool) *bus.Bus {
		b := bus.New()
		if _, err := b.Attach("dst", msgs); err != nil {
			log.Fatal(err)
		}
		if withInjector {
			inj, err := inject.New("count", inject.Scope{Dst: []bus.Address{"dst"}},
				inject.Behavior{TransformFn: func(*bus.Message) {}})
			if err != nil {
				log.Fatal(err)
			}
			inject.Install(b, inj)
		}
		return b
	}
	_ = timeSends(mkBus(false), msgs/8) // warm-up round
	base := timeSends(mkBus(false), msgs/4)
	withInj := timeSends(mkBus(true), msgs/4)
	fmt.Printf("%-30s %12d (bare bus %d)\n", "bus + scoped injector", withInj, base)

	// Meta-object chain.
	for _, n := range []int{1, 4, 16} {
		objs := make([]*metaobj.MetaObject, n)
		for i := range objs {
			objs[i] = &metaobj.MetaObject{
				Name:  fmt.Sprintf("w%d", i),
				Props: metaobj.Modificatory,
				Invoke: func(m *bus.Message, next func(*bus.Message) error) error {
					return next(m)
				},
			}
		}
		chain, err := metaobj.Compose(objs...)
		if err != nil {
			log.Fatal(err)
		}
		m := &bus.Message{Op: "op"}
		baseFn := func(*bus.Message) error { return nil }
		start := time.Now()
		for i := 0; i < msgs/4; i++ {
			if err := chain.Execute(m, baseFn); err != nil {
				log.Fatal(err)
			}
		}
		per := time.Since(start).Nanoseconds() / int64(msgs/4)
		fmt.Printf("%-30s %12d\n", fmt.Sprintf("meta-object chain len=%d", n), per)
	}
}

// headroomPlant is the linearized service plant used as the GA fitness
// scenario: output is the service headroom (capacity − arrival), which is
// exactly the quantity the live loop regulates.
type headroomPlant struct {
	arrival  float64
	headroom float64
}

func (p *headroomPlant) Step(capacity float64, _ time.Duration) float64 {
	if capacity < p.arrival+2 {
		capacity = p.arrival + 2
	}
	p.headroom = capacity - p.arrival
	return p.headroom
}

func (p *headroomPlant) Output() float64 { return p.headroom }

// timeSends measures mean ns per bus send+drain.
func timeSends(b *bus.Bus, n int) int64 {
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := b.Send(bus.Message{Kind: bus.Event, Src: "s", Dst: "dst"}); err != nil {
			log.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	return elapsed.Nanoseconds() / int64(n)
}
