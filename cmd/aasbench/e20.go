package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"sync/atomic"
	"time"

	aas "repro"

	"repro/internal/bus"
	"repro/internal/registry"
)

// E20: server-streaming calls with credit-based flow control. A Feed
// component on n2 pushes correlated items to a consumer on n1 through one
// admitted stream open; chunks coalesce into the peer link's egress batches
// and the consumer's credit window is the end-to-end backpressure signal.
// Three claims are exercised:
//
//  1. Throughput: streaming N items cross-node beats N unary calls by at
//     least 5x — the stream pays admission, correlation and a wire round
//     trip once per open instead of once per item, and chunk batching is
//     visible in the serving node's BatchStats.
//  2. Flow control: a slow consumer stalls the remote producer at a bounded
//     distance (its credit window), with zero ErrMailboxFull surfacing at
//     the producer — backpressure is blocked time, not an error or a queue.
//  3. Reclamation: closing a stream mid-flow revokes the remote producer
//     without waiting out the stream's deadline.
const e20ADL = `
system Streaming {
  component Feed {
    provide list(n) -> (item)
    provide pump() -> (item)
    provide item(i) -> (v)
  }
}
`

// e20Feed serves bounded and unbounded streams plus a unary per-item
// baseline. sent counts successful pushes; mailboxFull counts the failure
// mode the credit design forbids at the platform edge.
type e20Feed struct {
	sent        atomic.Uint64
	mailboxFull atomic.Uint64
}

func (f *e20Feed) Handle(op string, args []any) ([]any, error) {
	if op == "item" {
		return []any{args[0]}, nil
	}
	return nil, fmt.Errorf("feed: unknown op %s", op)
}

func (f *e20Feed) HandleStream(op string, args []any, sink aas.StreamSink) error {
	n := -1
	if op == "list" {
		n = args[0].(int)
	} else if op != "pump" {
		return aas.ErrUnstreamableOp
	}
	for i := 0; n < 0 || i < n; i++ {
		if err := sink.Send(i); err != nil {
			if errors.Is(err, bus.ErrMailboxFull) {
				f.mailboxFull.Add(1)
			}
			return err
		}
		f.sent.Add(1)
	}
	return nil
}

func runE20() {
	feed := &e20Feed{}
	h, err := aas.StartCluster(context.Background(), aas.ClusterSpec{
		ADL:       e20ADL,
		Nodes:     []string{"n1", "n2"},
		Placement: map[string]string{"Feed": "n2"},
		Registry: func(string) *registry.Registry {
			reg := &registry.Registry{}
			if err := reg.Register(registry.Entry{Name: "Feed", Version: registry.Version{Major: 1},
				New: func() any { return feed }}); err != nil {
				log.Fatal(err)
			}
			return reg
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer h.Close()
	sys1, sys2 := h.System("n1"), h.System("n2")
	ctx := context.Background()

	// --- Claim 1: N streamed items vs N unary calls, same link. ---
	const n = 10_000
	cl := sys1.Client("Feed")
	if _, err := cl.Call(ctx, "item", 0); err != nil { // warm the link
		log.Fatal(err)
	}

	unaryStart := time.Now()
	for i := 0; i < n; i++ {
		if _, err := cl.Call(ctx, "item", i); err != nil {
			log.Fatalf("E20 FAILED: unary call %d: %v", i, err)
		}
	}
	unary := time.Since(unaryStart)

	w0, f0 := h.Node("n2").BatchStats()
	streamStart := time.Now()
	st, err := cl.With(aas.WithStreamWindow(256)).Stream(ctx, "list", n)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i++ {
		item, rerr := st.Recv(ctx)
		if rerr != nil {
			log.Fatalf("E20 FAILED: stream recv %d: %v", i, rerr)
		}
		if item != i {
			log.Fatalf("E20 FAILED: stream recv %d: got %v", i, item)
		}
	}
	if _, err := st.Recv(ctx); err != io.EOF {
		log.Fatalf("E20 FAILED: stream terminal: %v", err)
	}
	stream := time.Since(streamStart)
	st.Close()
	w1, f1 := h.Node("n2").BatchStats()

	speedup := float64(unary) / float64(stream)
	batching := float64(f1-f0) / float64(max64(w1-w0, 1))
	fmt.Printf("cross-node, %d items: unary %v (%.1fus/item), stream %v (%.1fus/item) — %.1fx\n",
		n, unary.Round(time.Millisecond), float64(unary.Microseconds())/n,
		stream.Round(time.Millisecond), float64(stream.Microseconds())/n, speedup)
	fmt.Printf("serving link during stream: %d frames in %d writes (%.1f frames/write)\n",
		f1-f0, w1-w0, batching)
	if speedup < 5 {
		log.Fatalf("E20 FAILED: stream speedup %.1fx, want >= 5x", speedup)
	}

	// --- Claim 2: slow consumer, bounded producer, no mailbox-full. ---
	const window = 32
	feed.sent.Store(0)
	slow, err := cl.With(aas.WithStreamWindow(window)).Stream(ctx, "pump")
	if err != nil {
		log.Fatal(err)
	}
	consumed := 0
	maxAhead := uint64(0)
	for round := 0; round < 20; round++ {
		for i := 0; i < 4; i++ {
			if _, err := slow.Recv(ctx); err != nil {
				log.Fatalf("E20 FAILED: slow recv: %v", err)
			}
			consumed++
		}
		time.Sleep(10 * time.Millisecond) // the consumer dawdles; the producer must wait
		if ahead := feed.sent.Load() - uint64(consumed); ahead > maxAhead {
			maxAhead = ahead
		}
	}
	slow.Close()
	fmt.Printf("slow consumer: consumed %d, producer ran at most %d ahead (window %d), mailbox-full errors %d\n",
		consumed, maxAhead, window, feed.mailboxFull.Load())
	if maxAhead > 2*window {
		log.Fatalf("E20 FAILED: producer ran %d ahead of a window-%d consumer", maxAhead, window)
	}
	if feed.mailboxFull.Load() != 0 {
		log.Fatalf("E20 FAILED: %d ErrMailboxFull reached the producer", feed.mailboxFull.Load())
	}

	// --- Claim 3: cancel reclaims the remote producer inside the deadline. ---
	fast, err := cl.With(aas.WithDeadline(30*time.Second)).Stream(ctx, "pump")
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := fast.Recv(ctx); err != nil {
			log.Fatalf("E20 FAILED: pre-cancel recv: %v", err)
		}
	}
	cancelAt := time.Now()
	fast.Close()
	for sys2.ActiveStreams() > 0 {
		if time.Since(cancelAt) > 3*time.Second {
			log.Fatalf("E20 FAILED: remote producer still running %v after cancel (deadline 30s)",
				time.Since(cancelAt))
		}
		time.Sleep(2 * time.Millisecond)
	}
	fmt.Printf("cancelled stream: remote producer reclaimed in %v (deadline was 30s)\n",
		time.Since(cancelAt).Round(time.Millisecond))
	if sys1.PendingStreams() != 0 {
		log.Fatalf("E20 FAILED: %d stream table entries leaked", sys1.PendingStreams())
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
