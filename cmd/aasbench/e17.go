package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	aas "repro"

	"repro/internal/netsim"
	"repro/internal/registry"
)

// E17: the client-binding call surface under distribution stress. Two
// cluster nodes over TCP loopback host a stateful Store on n2, called from
// n1 through a compiled Client handle while the component live-migrates
// between the nodes continuously. Two phases:
//
//   - async fan-out: batches of concurrent Async calls issued through one
//     handle and gathered with Future.Wait — the batch completes in roughly
//     one round-trip instead of N, and no call is lost to the migrations;
//   - cancellation storm: calls with deadlines far below the fallback
//     timeout. Each aborted call must return in deadline-order time (not
//     the 10s fallback), release its reply-waiter slot immediately, and the
//     propagated deadline must reach the remote callee over the wire.
//
// The experiment asserts zero non-deadline errors, zero leaked waiter slots
// on both nodes (PendingCalls drains to zero), and reports how much faster
// a cancelled call returns than the fallback would allow.
const e17ADL = `
system AsyncDist {
  component Store {
    provide get(key) -> (value)
    provide count() -> (n)
  }
}
`

func runE17() {
	mkReg := func(string) *registry.Registry {
		reg := &registry.Registry{}
		if err := reg.Register(registry.Entry{Name: "Store", Version: registry.Version{Major: 1},
			New: func() any { return &e16Store{} }}); err != nil {
			log.Fatal(err)
		}
		return reg
	}
	h, err := aas.StartCluster(context.Background(), aas.ClusterSpec{
		ADL:       e17ADL,
		Nodes:     []string{"n1", "n2"},
		Placement: map[string]string{"Store": "n2"},
		Registry:  mkReg,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer h.Close()
	sys1, sys2 := h.System("n1"), h.System("n2")
	store := sys1.Client("Store") // one compiled handle for the whole run

	// Migration churn for both phases.
	stop := make(chan struct{})
	churnDone := make(chan struct{})
	var migrations atomic.Uint64
	go func() {
		defer close(churnDone)
		owner := "n2"
		systems := map[string]*aas.System{"n1": sys1, "n2": sys2}
		for {
			select {
			case <-stop:
				return
			default:
			}
			target := "n1"
			if owner == "n1" {
				target = "n2"
			}
			if err := systems[owner].Migrate("Store", netsim.NodeID(target)); err != nil {
				log.Fatalf("E17: migration %s -> %s: %v", owner, target, err)
			}
			owner = target
			migrations.Add(1)
			time.Sleep(20 * time.Millisecond)
		}
	}()

	// Phase 1: async fan-out under churn.
	const (
		fanout  = 32
		batches = 100
	)
	ctx := context.Background()
	var fanoutErrs uint64
	var batchLats []time.Duration
	completed := 0
	for b := 0; b < batches; b++ {
		futures := make([]*aas.Future, fanout)
		t0 := time.Now()
		for i := range futures {
			futures[i] = store.Async(ctx, "get", fmt.Sprintf("b%d-%d", b, i))
		}
		for _, f := range futures {
			if _, err := f.Wait(); err != nil {
				fanoutErrs++
				continue
			}
			completed++
		}
		batchLats = append(batchLats, time.Since(t0))
	}
	sort.Slice(batchLats, func(i, j int) bool { return batchLats[i] < batchLats[j] })
	fmt.Printf("async fan-out under migration churn: %d batches x %d calls, batch p50=%v p99=%v\n",
		batches, fanout, batchLats[len(batchLats)/2].Round(time.Microsecond),
		batchLats[len(batchLats)*99/100].Round(time.Microsecond))
	fmt.Printf("fan-out calls completed: %d, errors: %d\n", completed, fanoutErrs)

	// Phase 2: cancellation storm under churn. Deadlines straddle the remote
	// round-trip time, so a large fraction of calls abort mid-flight.
	const (
		stormClients = 8
		stormWindow  = 1500 * time.Millisecond
	)
	var (
		mu                 sync.Mutex
		cancelReturn       []time.Duration
		ok, cancelled      atomic.Uint64
		unexpected         atomic.Uint64
		stormWG            sync.WaitGroup
		stormDeadlineSteps = []time.Duration{200 * time.Microsecond, time.Millisecond, 5 * time.Millisecond}
	)
	stormEnd := time.Now().Add(stormWindow)
	for c := 0; c < stormClients; c++ {
		c := c
		stormWG.Add(1)
		go func() {
			defer stormWG.Done()
			var local []time.Duration
			for i := 0; time.Now().Before(stormEnd); i++ {
				budget := stormDeadlineSteps[i%len(stormDeadlineSteps)]
				cctx, cancel := context.WithTimeout(ctx, budget)
				t0 := time.Now()
				_, err := store.Call(cctx, "get", fmt.Sprintf("s%d-%d", c, i))
				elapsed := time.Since(t0)
				cancel()
				switch {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, context.DeadlineExceeded):
					cancelled.Add(1)
					local = append(local, elapsed)
				default:
					unexpected.Add(1)
				}
			}
			mu.Lock()
			cancelReturn = append(cancelReturn, local...)
			mu.Unlock()
		}()
	}
	stormWG.Wait()
	close(stop)
	<-churnDone

	fmt.Printf("\ncancellation storm (%d clients, deadlines %v): %d completed, %d cancelled, %d unexpected errors\n",
		stormClients, stormDeadlineSteps, ok.Load(), cancelled.Load(), unexpected.Load())
	if len(cancelReturn) > 0 {
		sort.Slice(cancelReturn, func(i, j int) bool { return cancelReturn[i] < cancelReturn[j] })
		p99 := cancelReturn[len(cancelReturn)*99/100]
		fmt.Printf("cancelled-call return time: p50=%v p99=%v max=%v (fallback timeout is 10s: %.0fx faster at p99)\n",
			cancelReturn[len(cancelReturn)/2].Round(time.Microsecond), p99.Round(time.Microsecond),
			cancelReturn[len(cancelReturn)-1].Round(time.Microsecond), float64(10*time.Second)/float64(p99))
	}
	fmt.Printf("live migrations during the run: %d\n", migrations.Load())

	// Every aborted call must have released its reply-waiter slot; give
	// stragglers (replies racing the deadline) a moment to drain.
	deadline := time.Now().Add(2 * time.Second)
	for sys1.PendingCalls()+sys2.PendingCalls() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	p1, p2 := sys1.PendingCalls(), sys2.PendingCalls()
	fmt.Printf("reply-waiter slots outstanding after the storm: n1=%d n2=%d\n", p1, p2)
	if fanoutErrs != 0 || unexpected.Load() != 0 || p1 != 0 || p2 != 0 {
		log.Fatal("E17 FAILED: lost calls or leaked waiter slots under cancellation storm")
	}
	fmt.Println("zero lost fan-out calls, zero unexpected errors, zero leaked waiter slots")
}
