package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	aas "repro"

	"repro/internal/aspects"
	"repro/internal/bus"
	"repro/internal/filters"
)

// E15: adaptation-pipeline interchange under load. One mediated chain
// (Front -> Link connector -> Store) serves closed-loop clients while the
// RAML interchanges the adaptation stack at a sustained rate: the
// connector's whole filter chain is atomically replaced and an aspect is
// attached/removed through the region machinery, thousands of times per
// second. The experiment reports the client latency distribution with and
// without the interchange churn, the interchange rate, that zero calls
// failed, and that no message ever evaluated a torn pipeline — each filter
// generation is a self-verifying pair (tagger + checker compiled as one
// unit) and each aspect generation stamps invocations in Before and checks
// the stamp in After.
const e15ADL = `
system Pipeline {
  component Front {
    provide fetch(key) -> (value)
    require get(key) -> (value)
  }
  component Store {
    provide get(key) -> (value)
    provide put(key, value) -> (status)
  }
  connector Link { kind rpc }
  bind Front.get -> Store.get via Link
}
`

type e15Front struct{ caller aas.Caller }

func (f *e15Front) SetCaller(c aas.Caller) { f.caller = c }

func (f *e15Front) Handle(op string, args []any) ([]any, error) {
	return f.caller.Call("get", args...)
}

type e15KV struct {
	mu   sync.Mutex
	data map[string]string
}

func (k *e15KV) Handle(op string, args []any) ([]any, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	switch op {
	case "put":
		k.data[args[0].(string)] = args[1].(string)
		return []any{"ok"}, nil
	case "get":
		return []any{k.data[args[0].(string)]}, nil
	}
	return nil, fmt.Errorf("e15kv: unknown op %s", op)
}

func runE15() {
	reg := aas.NewRegistry()
	reg.MustRegister("Front", "1.0", nil, func() any { return &e15Front{} })
	reg.MustRegister("Store", "1.0", nil, func() any { return &e15KV{data: map[string]string{}} })
	sys, err := aas.Load(e15ADL, aas.Options{Registry: reg.Registry})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()
	if _, err := sys.Client("Store").Call(context.Background(), "put", "k", "v"); err != nil {
		log.Fatal(err)
	}

	const (
		clients = 4
		window  = 1500 * time.Millisecond
	)

	var errs atomic.Uint64
	steady := e15Drive(sys, clients, window, &errs)
	fmt.Println("mediated chain (Front->Link->Store) closed-loop latency, 4 clients:")
	fmt.Printf("%-30s %10s %10s %10s %10s %12s\n", "condition", "p50", "p95", "p99", "max", "calls/sec")
	e15Report("steady state", steady, window)

	// Interchange churn: atomic whole-chain filter replacement plus aspect
	// attach/remove through the region machinery, each generation
	// self-verifying so a torn pipeline is detected, not just suspected.
	var torn, interchanges atomic.Uint64
	var pendingFilter sync.Map // corr -> filter generation
	mkFilterGen := func(gen int) []filters.Filter {
		return []filters.Filter{
			filters.Transform{FilterName: "tag", Match: filters.Matcher{Kind: bus.Request},
				Fn: func(m *bus.Message) { pendingFilter.Store(m.Corr, gen) }},
			filters.Transform{FilterName: "verify", Match: filters.Matcher{Kind: bus.Request},
				Fn: func(m *bus.Message) {
					if got, ok := pendingFilter.LoadAndDelete(m.Corr); !ok || got.(int) != gen {
						torn.Add(1)
					}
				}},
		}
	}
	var pendingAspect sync.Map // *aspects.Invocation -> aspect generation
	mkAspectGen := func(gen int) aas.Aspect {
		return aas.Aspect{Name: "pair", Advice: []aas.Advice{{
			Pointcut: aas.Pointcut{Component: "Store", Op: "get*"},
			Before: func(inv *aspects.Invocation) error {
				pendingAspect.Store(inv, gen)
				return nil
			},
			After: func(inv *aspects.Invocation, res any, err error) (any, error) {
				if got, ok := pendingAspect.LoadAndDelete(inv); !ok || got.(int) != gen {
					torn.Add(1)
				}
				return res, err
			},
		}}}
	}

	stop := make(chan struct{})
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := sys.ReplaceFilters("Front", "get", filters.Input, mkFilterGen(i)...); err != nil {
				log.Fatal(err)
			}
			if err := sys.AttachAspect(mkAspectGen(i)); err != nil {
				log.Fatal(err)
			}
			if err := sys.RemoveAspect("pair"); err != nil {
				log.Fatal(err)
			}
			interchanges.Add(1)
		}
	}()

	churned := e15Drive(sys, clients, window, &errs)
	close(stop)
	<-churnDone

	e15Report("during pipeline interchange", churned, window)
	fmt.Printf("\ninterchange cycles while serving (filter chain replace + aspect attach/remove): %d (%.0f/sec)\n",
		interchanges.Load(), float64(interchanges.Load())/window.Seconds())
	fmt.Printf("calls completed: %d, errors: %d, torn pipelines observed: %d\n",
		uint64(len(steady)+len(churned)), errs.Load(), torn.Load())
	if errs.Load() != 0 || torn.Load() != 0 {
		log.Fatal("E15 FAILED: interchange disturbed the data plane")
	}
	fmt.Println("every message evaluated exactly one complete pipeline generation")
}

func e15Drive(sys *aas.System, clients int, window time.Duration, errs *atomic.Uint64) []time.Duration {
	var mu sync.Mutex
	var all []time.Duration
	var wg sync.WaitGroup
	front := sys.Client("Front")
	deadline := time.Now().Add(window)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lats []time.Duration
			for time.Now().Before(deadline) {
				t0 := time.Now()
				if _, err := front.Call(context.Background(), "fetch", "k"); err != nil {
					errs.Add(1)
					continue
				}
				lats = append(lats, time.Since(t0))
			}
			mu.Lock()
			all = append(all, lats...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	return all
}

func e15Report(label string, lats []time.Duration, window time.Duration) {
	if len(lats) == 0 {
		fmt.Printf("%-30s %10s %10s %10s %10s %12d\n", label, "-", "-", "-", "-", 0)
		return
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(p float64) time.Duration {
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	fmt.Printf("%-30s %10v %10v %10v %10v %12.0f\n", label,
		q(0.50).Round(time.Microsecond), q(0.95).Round(time.Microsecond),
		q(0.99).Round(time.Microsecond), lats[len(lats)-1].Round(time.Microsecond),
		float64(len(lats))/window.Seconds())
}
