package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	aas "repro"

	"repro/internal/adl"
	"repro/internal/bus"
	"repro/internal/connector"
	"repro/internal/filters"
	"repro/internal/flo"
)

// runE1 exercises Figure 1 end-to-end: serve through the connector,
// observe the RAML stream, perform one intercession (hot swap), verify
// service continuity.
func runE1() {
	sys, reg := startKVSystem()
	defer sys.Stop()

	ctx := context.Background()
	store, front := sys.Client("Store"), sys.Client("Front")
	if _, err := store.Call(ctx, "put", "k", "v"); err != nil {
		log.Fatal(err)
	}
	res, err := front.Call(ctx, "fetch", "k")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before swap: fetch(k) = %v (impl %v)\n", res[0], res[1])

	entry, err := reg.Lookup("StoreV2")
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sys.SwapImplementation("Store", entry, true)
	if err != nil {
		log.Fatal(err)
	}
	res, err = front.Call(ctx, "fetch", "k")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after swap:  fetch(k) = %v (impl %v), state preserved\n", res[0], res[1])
	fmt.Printf("swap blackout=%v held=%d stateBytes=%d\n", rep.Blackout, rep.HeldMessages, rep.StateBytes)

	m := sys.Introspect()
	fmt.Printf("introspection: %d components, %d connectors, %d raml events\n",
		len(m.Components), len(m.Connectors), len(sys.Events().History(0)))
}

// runE2 measures the claim "a connector is a light-weight component …
// induces a low overload": per-call cost of direct delivery vs connector
// mediation vs mediation with filters and rules.
func runE2() {
	const calls = 20000
	fmt.Printf("%-32s %12s %10s\n", "path", "ns/call", "vs direct")

	direct := measureCalls(calls, nil, 0, false)
	fmt.Printf("%-32s %12d %9.2fx\n", "direct component call", direct, 1.0)
	conn := measureCalls(calls, nil, 0, true)
	fmt.Printf("%-32s %12d %9.2fx\n", "via connector", conn, float64(conn)/float64(direct))
	for _, nf := range []int{1, 4, 16} {
		v := measureCalls(calls, nil, nf, true)
		fmt.Printf("%-32s %12d %9.2fx\n",
			fmt.Sprintf("via connector + %d filters", nf), v, float64(v)/float64(direct))
	}
	rules, err := flo.NewEngine([]flo.Rule{{Trigger: "get", Op: flo.ImpliesLater, Target: "audit"}})
	if err != nil {
		log.Fatal(err)
	}
	v := measureCalls(calls, rules, 0, true)
	fmt.Printf("%-32s %12d %9.2fx\n", "via connector + rule engine", v, float64(v)/float64(direct))
}

// measureCalls builds a minimal bus topology and returns mean ns per
// request/reply exchange.
func measureCalls(calls int, rules *flo.Engine, nFilters int, viaConnector bool) int64 {
	b := bus.New()
	serverEp, err := b.Attach("srv", 4096)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			m, err := serverEp.Receive(ctx)
			if err != nil {
				return
			}
			_ = b.Send(bus.Message{Kind: bus.Reply, Op: m.Op,
				Payload: connector.ReplyPayload{Results: []any{"v"}},
				Src:     "srv", Dst: m.Src, Corr: m.Corr})
		}
	}()

	target := bus.Address("srv")
	var conn *connector.Connector
	if viaConnector {
		var opts []connector.Option
		if rules != nil {
			opts = append(opts, connector.WithRules(rules))
		}
		conn, err = connector.New("c", adl.KindRPC, b, []bus.Address{"srv"}, opts...)
		if err != nil {
			log.Fatal(err)
		}
		var filterWork uint64
		for i := 0; i < nFilters; i++ {
			if err := conn.Filters().Attach(filters.Input, filters.Transform{
				FilterName: fmt.Sprintf("f%d", i),
				Fn:         func(*bus.Message) { filterWork++ },
			}); err != nil {
				log.Fatal(err)
			}
		}
		conn.Start(ctx)
		defer conn.Stop()
		target = connector.Address("c")
	}

	clientEp, err := b.Attach("cli", 4096)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < calls; i++ {
		corr := uint64(i + 1)
		if err := b.Send(bus.Message{Kind: bus.Request, Op: "get",
			Payload: connector.CallPayload{Args: []any{"k"}},
			Src:     "cli", Dst: target, Corr: corr}); err != nil {
			log.Fatal(err)
		}
		for {
			m, err := clientEp.Receive(ctx)
			if err != nil {
				log.Fatal(err)
			}
			if m.Kind == bus.Reply && m.Corr == corr {
				break
			}
		}
	}
	elapsed := time.Since(start)
	wg.Add(0)
	return elapsed.Nanoseconds() / int64(calls)
}

// runE3 compares the two change mechanisms of the paper on the same
// behavioural change: a light-weight adaptation (connector filter swap —
// no quiescence) vs a full reconfiguration (component hot swap with
// quiescence). "In case light-weight highly reactive solutions are
// required, dynamic adaptability should be preferred."
func runE3() {
	sys, reg := startKVSystem()
	defer sys.Stop()
	if _, err := sys.Client("Store").Call(context.Background(), "put", "k", "v"); err != nil {
		log.Fatal(err)
	}
	conn, err := sys.Connector("Front", "get")
	if err != nil {
		log.Fatal(err)
	}

	const changes = 200
	// Adaptation path: attach/detach a transform filter on the live
	// connector.
	start := time.Now()
	for i := 0; i < changes; i++ {
		if err := conn.Filters().Attach(filters.Input, filters.Transform{
			FilterName: "adapt", Fn: func(m *bus.Message) {}}); err != nil {
			log.Fatal(err)
		}
		conn.Filters().Detach(filters.Input, "adapt")
	}
	adaptPer := time.Since(start) / (2 * changes)

	// Reconfiguration path: full quiescence-protected implementation swap.
	e1, err := reg.Lookup("Store")
	if err != nil {
		log.Fatal(err)
	}
	e2, err := reg.Lookup("StoreV2")
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	var blackout time.Duration
	for i := 0; i < changes; i++ {
		entry := e2
		if i%2 == 1 {
			entry = e1
		}
		rep, err := sys.SwapImplementation("Store", entry, true)
		if err != nil {
			log.Fatal(err)
		}
		blackout += rep.Blackout
	}
	reconfPer := time.Since(start) / changes

	fmt.Printf("%-36s %14s %16s\n", "mechanism", "per change", "service blocked?")
	fmt.Printf("%-36s %14v %16s\n", "adaptation (filter swap)", adaptPer, "no")
	fmt.Printf("%-36s %14v %16s\n", "reconfiguration (hot swap)", reconfPer, "yes (quiesced)")
	fmt.Printf("mean swap blackout: %v\n", blackout/changes)
	fmt.Printf("ratio: reconfiguration is %.0fx more expensive per change\n",
		float64(reconfPer)/float64(adaptPer))
}

// runE4 verifies the channel-preservation guarantee: messages in transit
// across a reconfiguration are neither lost nor duplicated, for growing
// in-flight counts.
func runE4() {
	fmt.Printf("%-12s %10s %10s %8s %8s %14s\n",
		"in-flight", "sent", "received", "lost", "dup", "blackout")
	for _, inflight := range []int{10, 100, 1000, 10000} {
		b := bus.New()
		dst, err := b.Attach("dst", inflight+64)
		if err != nil {
			log.Fatal(err)
		}
		// Park the destination (reconfiguration begins) and pour traffic in.
		b.Pause("dst")
		for i := 0; i < inflight; i++ {
			if err := b.Send(bus.Message{Kind: bus.Event, Payload: i, Src: "s", Dst: "dst"}); err != nil {
				log.Fatal(err)
			}
		}
		start := time.Now()
		// Reconfiguration body would run here (swap …); then resume.
		flushed, err := b.Resume("dst")
		if err != nil {
			log.Fatal(err)
		}
		blackout := time.Since(start)

		seen := map[int]bool{}
		dups := 0
		for {
			m, ok := dst.TryReceive()
			if !ok {
				break
			}
			v := m.Payload.(int)
			if seen[v] {
				dups++
			}
			seen[v] = true
		}
		lost := inflight - len(seen)
		fmt.Printf("%-12d %10d %10d %8d %8d %14v\n",
			inflight, inflight, flushed, lost, dups, blackout)
	}
}

// runE5 measures strong dynamic reconfiguration cost against state size.
func runE5() {
	fmt.Printf("%-12s %14s %14s\n", "state", "swap time", "state bytes")
	for _, keys := range []int{16, 256, 4096, 65536} {
		sys, reg := startKVSystem()
		store := sys.Client("Store")
		payload := strings.Repeat("x", 48)
		for i := 0; i < keys; i++ {
			if _, err := store.Call(context.Background(), "put", fmt.Sprintf("key-%08d", i), payload); err != nil {
				log.Fatal(err)
			}
		}
		entry, err := reg.Lookup("StoreV2")
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		rep, err := sys.SwapImplementation("Store", entry, true)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("%-12s %14v %14d\n", fmt.Sprintf("%d keys", keys), elapsed, rep.StateBytes)
		sys.Stop()
	}
	_ = aas.EvSwap
}
