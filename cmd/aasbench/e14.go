package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	aas "repro"

	"repro/internal/adl"
)

// E14: region-scoped reconfiguration. Two disjoint chains share one system;
// chain B's store is reconfigured in a loop (ModifyComponent: pause the
// region, quiesce, swap, resume) while closed-loop clients hammer chain A.
// The experiment reports chain A's latency distribution with and without
// the concurrent reconfiguration, and how many A-calls completed while B
// was mid-transaction — the paper-level claim that reconfiguration runs
// concurrently with application tasks instead of stopping the world.
const e14ADL = `
system Dual {
  component FrontA {
    provide fetch(key) -> (value)
    require get(key) -> (value)
  }
  component StoreA {
    provide get(key) -> (value)
    provide put(key, value) -> (status)
  }
  component FrontB {
    provide fetch(key) -> (value)
    require get(key) -> (value)
  }
  component StoreB {
    provide get(key) -> (value)
    provide put(key, value) -> (status)
    property statefulness = "stateful"
  }
  connector LinkA { kind rpc }
  connector LinkB { kind rpc }
  bind FrontA.get -> StoreA.get via LinkA
  bind FrontB.get -> StoreB.get via LinkB
}
`

// e14Front forwards fetch through the bound get service.
type e14Front struct{ caller aas.Caller }

func (f *e14Front) SetCaller(c aas.Caller) { f.caller = c }

func (f *e14Front) Handle(op string, args []any) ([]any, error) {
	return f.caller.Call("get", args...)
}

// e14KV is a small stateful store.
type e14KV struct {
	mu   sync.Mutex
	data map[string]string
}

func (k *e14KV) Handle(op string, args []any) ([]any, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	switch op {
	case "put":
		k.data[args[0].(string)] = args[1].(string)
		return []any{"ok"}, nil
	case "get":
		return []any{k.data[args[0].(string)]}, nil
	}
	return nil, fmt.Errorf("e14kv: unknown op %s", op)
}

func (k *e14KV) Snapshot() ([]byte, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := ""
	for key, v := range k.data {
		out += key + "=" + v + "\n"
	}
	return []byte(out), nil
}

func (k *e14KV) Restore(b []byte) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.data = map[string]string{}
	for _, line := range strings.Split(string(b), "\n") {
		if i := strings.IndexByte(line, '='); i > 0 {
			k.data[line[:i]] = line[i+1:]
		}
	}
	return nil
}

func runE14() {
	reg := aas.NewRegistry()
	reg.MustRegister("FrontA", "1.0", nil, func() any { return &e14Front{} })
	reg.MustRegister("FrontB", "1.0", nil, func() any { return &e14Front{} })
	reg.MustRegister("StoreA", "1.0", nil, func() any { return &e14KV{data: map[string]string{}} })
	reg.MustRegister("StoreB", "1.0", nil, func() any { return &e14KV{data: map[string]string{}} })
	sys, err := aas.Load(e14ADL, aas.Options{Registry: reg.Registry})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()
	ctx := context.Background()
	if _, err := sys.Client("StoreA").Call(ctx, "put", "k", "va"); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Client("StoreB").Call(ctx, "put", "k", "vb"); err != nil {
		log.Fatal(err)
	}

	const (
		clients = 4
		window  = 1500 * time.Millisecond
	)

	steady := e14Drive(sys, clients, window)
	fmt.Println("chain A (FrontA->StoreA) closed-loop latency, 4 clients:")
	fmt.Printf("%-28s %10s %10s %10s %10s %12s\n", "condition", "p50", "p95", "p99", "max", "calls/sec")
	e14Report("steady state", steady, window)

	// Concurrent reconfiguration of the disjoint region {StoreB}.
	cfgB, err := adl.Parse(strings.Replace(e14ADL, "component StoreB {",
		"component StoreB {\n    property tier = \"v2\"", 1))
	if err != nil {
		log.Fatal(err)
	}
	cfgA, err := adl.Parse(e14ADL)
	if err != nil {
		log.Fatal(err)
	}
	var reconfigs atomic.Uint64
	var regions []string
	stop := make(chan struct{})
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			cfg := cfgB
			if i%2 == 1 {
				cfg = cfgA
			}
			rep, err := sys.Reconfigure(cfg)
			if err != nil {
				log.Fatal(err)
			}
			if regions == nil {
				regions = rep.Region
			}
			reconfigs.Add(1)
		}
	}()

	churned := e14Drive(sys, clients, window)
	close(stop)
	<-churnDone

	e14Report("during B reconfiguration", churned, window)
	fmt.Printf("\nreconfigurations of region %v while A served: %d (%.0f/sec)\n",
		regions, reconfigs.Load(), float64(reconfigs.Load())/window.Seconds())
	fmt.Printf("chain A calls completed during reconfiguration churn: %d (no errors, no stalls)\n", len(churned))

	// And chain B itself keeps its state across every swap.
	res, err := sys.Client("FrontB").Call(ctx, "fetch", "k")
	if err != nil || res[0] != "vb" {
		log.Fatalf("chain B state after churn: %v %v", res, err)
	}
	fmt.Println("chain B state preserved across all swaps: fetch(k) = vb")
}

// e14Drive runs closed-loop clients against chain A for the window and
// returns every call's latency.
func e14Drive(sys *aas.System, clients int, window time.Duration) []time.Duration {
	var mu sync.Mutex
	var all []time.Duration
	var wg sync.WaitGroup
	frontA := sys.Client("FrontA")
	deadline := time.Now().Add(window)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lats []time.Duration
			for time.Now().Before(deadline) {
				t0 := time.Now()
				if _, err := frontA.Call(context.Background(), "fetch", "k"); err != nil {
					log.Fatal(err)
				}
				lats = append(lats, time.Since(t0))
			}
			mu.Lock()
			all = append(all, lats...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	return all
}

func e14Report(label string, lats []time.Duration, window time.Duration) {
	if len(lats) == 0 {
		fmt.Printf("%-28s %10s %10s %10s %10s %12d\n", label, "-", "-", "-", "-", 0)
		return
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	fmt.Printf("%-28s %10v %10v %10v %10v %12.0f\n", label,
		q(0.50).Round(time.Microsecond), q(0.95).Round(time.Microsecond),
		q(0.99).Round(time.Microsecond), lats[len(lats)-1].Round(time.Microsecond),
		float64(len(lats))/window.Seconds())
}
