// Command aasbench regenerates every experiment in EXPERIMENTS.md
// (E1–E22). The paper is a position paper with no tables and one figure;
// each experiment quantifies one of its claims (see DESIGN.md §3 for the
// claim-to-experiment mapping).
//
// Usage:
//
//	aasbench           run all experiments
//	aasbench -e E4     run one experiment (E1..E22)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
)

type experiment struct {
	id    string
	title string
	run   func()
}

func main() {
	only := flag.String("e", "", "run a single experiment (E1..E22)")
	flag.Parse()

	exps := []experiment{
		{"E1", "Figure 1 live: connector-based reconfiguration and adaptation", runE1},
		{"E2", "connector overhead (\"induces a low overload\")", runE2},
		{"E3", "adaptation vs reconfiguration reaction cost", runE3},
		{"E4", "channel preservation across reconfiguration", runE4},
		{"E5", "strong reconfiguration: state transfer cost", runE5},
		{"E6", "deployment planning and migration closer to demand", runE6},
		{"E7", "feedback control of QoS under rush-hour load", runE7},
		{"E8", "filter/injector/meta-object interception scaling", runE8},
		{"E9", "LTS composition-correctness checking cost", runE9},
		{"E10", "FLO/C rule enforcement and cycle analysis", runE10},
		{"E11", "interface-modification compliance matrix", runE11},
		{"E12", "the ten adaptation approaches of §2, compared", runE12},
		{"E13", "sharded data-plane throughput under reconfiguration", runE13},
		{"E14", "region-scoped reconfiguration: disjoint traffic proceeds", runE14},
		{"E15", "compiled-pipeline interchange under load: no errors, no torn chains", runE15},
		{"E16", "distribution plane: cross-node calls under live migration churn", runE16},
		{"E17", "client bindings: async fan-out + cancellation storm during migration churn", runE17},
		{"E18", "typed handles: zero-alloc calls driven through live migration churn", runE18},
		{"E19", "goodput under open-loop overload: admission, EDF, expired-work shedding", runE19},
		{"E20", "server streaming: credit flow control vs the call-per-item floor", runE20},
		{"E21", "end-to-end tracing: span-tree reassembly under migration churn", runE21},
		{"E22", "elastic plane: seed-list join, warm-standby failover blackout, rebalance onto a fresh node", runE22},
	}
	sort.SliceStable(exps, func(i, j int) bool { return i < j })

	ran := 0
	for _, e := range exps {
		if *only != "" && e.id != *only {
			continue
		}
		fmt.Printf("==== %s: %s ====\n", e.id, e.title)
		e.run()
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "aasbench: unknown experiment %q\n", *only)
		os.Exit(2)
	}
}
