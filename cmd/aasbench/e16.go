package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	aas "repro"

	"repro/internal/netsim"
	"repro/internal/registry"
)

// E16: the distribution plane under load. Two cluster nodes run in this
// process over real TCP loopback: Front on n1, a stateful Store on n2, so
// every Front.get is a remote binding crossing the wire through a gateway
// endpoint. The experiment reports the closed-loop client latency
// distribution of the cross-node call, first in steady state and then while
// Store live-migrates between the nodes continuously (migration churn). It
// asserts zero call errors and exact state preservation — the Store's get
// counter must equal the number of completed fetches across every hop.
const e16ADL = `
system Dist {
  component Front {
    provide fetch(key) -> (value)
    require get(key) -> (value)
  }
  component Store {
    provide get(key) -> (value)
    provide count() -> (n)
  }
  connector Link { kind rpc }
  bind Front.get -> Store.get via Link
}
`

type e16Front struct{ caller aas.Caller }

func (f *e16Front) SetCaller(c aas.Caller) { f.caller = c }

func (f *e16Front) Handle(op string, args []any) ([]any, error) {
	return f.caller.Call("get", args...)
}

type e16Store struct {
	mu   sync.Mutex
	gets int64
}

func (s *e16Store) Handle(op string, args []any) ([]any, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch op {
	case "get":
		s.gets++
		return []any{args[0]}, nil
	case "count":
		return []any{int(s.gets)}, nil
	}
	return nil, fmt.Errorf("e16store: unknown op %s", op)
}

func (s *e16Store) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return []byte(strconv.FormatInt(s.gets, 10)), nil
}

func (s *e16Store) Restore(b []byte) error {
	n, err := strconv.ParseInt(string(b), 10, 64)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.gets = n
	s.mu.Unlock()
	return nil
}

func runE16() {
	mkReg := func(string) *registry.Registry {
		reg := &registry.Registry{}
		if err := reg.Register(registry.Entry{Name: "Front", Version: registry.Version{Major: 1},
			New: func() any { return &e16Front{} }}); err != nil {
			log.Fatal(err)
		}
		if err := reg.Register(registry.Entry{Name: "Store", Version: registry.Version{Major: 1},
			New: func() any { return &e16Store{} }}); err != nil {
			log.Fatal(err)
		}
		return reg
	}
	h, err := aas.StartCluster(context.Background(), aas.ClusterSpec{
		ADL:       e16ADL,
		Nodes:     []string{"n1", "n2"},
		Placement: map[string]string{"Front": "n1", "Store": "n2"},
		Registry:  mkReg,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer h.Close()
	sys1, sys2 := h.System("n1"), h.System("n2")

	const (
		clients = 4
		window  = 1500 * time.Millisecond
	)
	var errs atomic.Uint64

	steady := e16Drive(sys1, clients, window, &errs)
	fmt.Println("cross-node call (n1 Front -> TCP gateway -> n2 Store), closed loop, 4 clients:")
	fmt.Printf("%-30s %10s %10s %10s %10s %12s\n", "condition", "p50", "p95", "p99", "max", "calls/sec")
	e16Report("steady state (remote)", steady, window)

	// Migration churn: Store bounces between the nodes for the whole
	// window; every hop quiesces, snapshots, ships state over the wire,
	// re-registers on the peer and repoints the origin's address at a
	// gateway — while the clients keep calling.
	var migrations atomic.Uint64
	stop := make(chan struct{})
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		owner := "n2"
		systems := map[string]*aas.System{"n1": sys1, "n2": sys2}
		for {
			select {
			case <-stop:
				// Leave Store wherever it is; the count query below is
				// location-transparent anyway.
				return
			default:
			}
			target := "n1"
			if owner == "n1" {
				target = "n2"
			}
			if err := systems[owner].Migrate("Store", netsim.NodeID(target)); err != nil {
				log.Fatalf("E16: migration %s -> %s: %v", owner, target, err)
			}
			owner = target
			migrations.Add(1)
			time.Sleep(20 * time.Millisecond)
		}
	}()

	churned := e16Drive(sys1, clients, window, &errs)
	close(stop)
	<-churnDone

	e16Report("during migration churn", churned, window)
	total := uint64(len(steady) + len(churned))
	fmt.Printf("\nlive cross-node migrations while serving: %d (%.0f/sec)\n",
		migrations.Load(), float64(migrations.Load())/window.Seconds())

	out, err := sys1.Client("Store").Call(context.Background(), "count")
	if err != nil {
		log.Fatalf("E16: count: %v", err)
	}
	served := out[0].(int)
	fmt.Printf("calls completed: %d, errors: %d, store served: %d\n", total, errs.Load(), served)
	if errs.Load() != 0 {
		log.Fatal("E16 FAILED: calls lost during migration churn")
	}
	if uint64(served) != total {
		log.Fatalf("E16 FAILED: state drift across migrations (served %d != completed %d)", served, total)
	}
	fmt.Println("zero lost or duplicated calls; state preserved across every hop")
}

func e16Drive(sys *aas.System, clients int, window time.Duration, errs *atomic.Uint64) []time.Duration {
	var mu sync.Mutex
	var all []time.Duration
	var wg sync.WaitGroup
	front := sys.Client("Front")
	deadline := time.Now().Add(window)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lats []time.Duration
			for i := 0; time.Now().Before(deadline); i++ {
				token := fmt.Sprintf("c%d-%d", c, i)
				t0 := time.Now()
				out, err := front.Call(context.Background(), "fetch", token)
				if err != nil || len(out) != 1 || out[0] != token {
					errs.Add(1)
					continue
				}
				lats = append(lats, time.Since(t0))
			}
			mu.Lock()
			all = append(all, lats...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	return all
}

func e16Report(label string, lats []time.Duration, window time.Duration) {
	if len(lats) == 0 {
		fmt.Printf("%-30s %10s %10s %10s %10s %12d\n", label, "-", "-", "-", "-", 0)
		return
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(p float64) time.Duration {
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	fmt.Printf("%-30s %10v %10v %10v %10v %12.0f\n", label,
		q(0.50).Round(time.Microsecond), q(0.95).Round(time.Microsecond),
		q(0.99).Round(time.Microsecond), lats[len(lats)-1].Round(time.Microsecond),
		float64(len(lats))/window.Seconds())
}
