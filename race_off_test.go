//go:build !race

package aas_test

// raceEnabled reports whether the race detector is instrumenting this
// build; the alloc-budget tests skip under it (instrumentation allocates).
const raceEnabled = false
