// Parallel benchmarks for the distribution plane (E16): cross-node calls
// through a gateway endpoint over real TCP loopback, with and without a
// connector in front, and the cost of one live cross-node migration. Run
// with -cpu=1,2,4 to see how the peer link pipelines concurrent callers.
package aas_test

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	aas "repro"

	"repro/internal/netsim"
	"repro/internal/registry"
)

const benchClusterADL = `
system Dist {
  component Front {
    provide fetch(key) -> (value)
    require get(key) -> (value)
  }
  component Store {
    provide get(key) -> (value)
  }
  connector Link { kind rpc }
  bind Front.get -> Store.get via Link
}
`

type clFront struct{ caller aas.Caller }

func (f *clFront) SetCaller(c aas.Caller) { f.caller = c }

func (f *clFront) Handle(op string, args []any) ([]any, error) {
	return f.caller.Call("get", args...)
}

type clStore struct{ gets atomic.Int64 }

func (s *clStore) Handle(op string, args []any) ([]any, error) {
	s.gets.Add(1)
	return []any{args[0]}, nil
}

func (s *clStore) Snapshot() ([]byte, error) {
	return []byte(strconv.FormatInt(s.gets.Load(), 10)), nil
}

func (s *clStore) Restore(b []byte) error {
	n, err := strconv.ParseInt(string(b), 10, 64)
	if err != nil {
		return err
	}
	s.gets.Store(n)
	return nil
}

func benchClusterRegistry(string) *registry.Registry {
	reg := &registry.Registry{}
	if err := reg.Register(registry.Entry{Name: "Front", Version: registry.Version{Major: 1},
		New: func() any { return &clFront{} }}); err != nil {
		panic(err)
	}
	if err := reg.Register(registry.Entry{Name: "Store", Version: registry.Version{Major: 1},
		New: func() any { return &clStore{} }}); err != nil {
		panic(err)
	}
	return reg
}

func startBenchCluster(b *testing.B) *aas.ClusterHarness {
	return startBenchClusterAt(b, 0, 0) // 0 = negotiate the newest wire version
}

// startBenchClusterAt pins every node's advertised wire version; maxVer 2
// disables per-link frame batching (the pre-batching baseline), 0 uses the
// default (newest, batched). linger is the egress group-commit window.
func startBenchClusterAt(b *testing.B, maxVer uint8, linger time.Duration) *aas.ClusterHarness {
	b.Helper()
	h, err := aas.StartCluster(context.Background(), aas.ClusterSpec{
		ADL:       benchClusterADL,
		Nodes:     []string{"n1", "n2"},
		Placement: map[string]string{"Front": "n1", "Store": "n2"},
		Registry:  benchClusterRegistry,
		Cluster: func(string) aas.ClusterOptions {
			return aas.ClusterOptions{MaxWireVersion: maxVer, BatchLinger: linger}
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(h.Close)
	return h
}

// BenchmarkClusterParallelRemoteCall measures the bare cross-node path:
// System.Call resolves the remote view, the gateway forwards over TCP, the
// peer serves and the reply crosses back.
func BenchmarkClusterParallelRemoteCall(b *testing.B) {
	h := startBenchCluster(b)
	sys := h.System("n1")
	if _, err := sys.Call("Store", "get", "warm"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := sys.Call("Store", "get", "k"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkClusterBatchedRemoteCall measures the cross-node path over a
// batched (wire v3) peer link: concurrent callers' frames coalesce into
// FrameBatch writes, amortizing the syscall per call. Compare against
// BenchmarkClusterUnbatchedRemoteCall at the same -cpu.
func BenchmarkClusterBatchedRemoteCall(b *testing.B) {
	benchClusterRemote(b, startBenchClusterAt(b, 0, 200*time.Microsecond))
}

// BenchmarkClusterUnbatchedRemoteCall is the same workload with the link
// pinned to wire v2 — one frame per write — the pre-batching baseline.
func BenchmarkClusterUnbatchedRemoteCall(b *testing.B) {
	benchClusterRemote(b, startBenchClusterAt(b, 2, 0))
}

func benchClusterRemote(b *testing.B, h *aas.ClusterHarness) {
	b.Helper()
	sys := h.System("n1")
	store := sys.Client("Store")
	ctx := context.Background()
	if _, err := store.Call(ctx, "get", "warm"); err != nil {
		b.Fatal(err)
	}
	// Many in-flight callers per proc: the shape that exposes the syscall
	// tax of one-write-per-frame and lets the egress coalesce deep batches.
	b.SetParallelism(64)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := store.Call(ctx, "get", "k"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkClusterParallelMediatedRemoteCall adds the full caller-side
// stack: Front's container, the rpc connector, then the gateway and the
// wire — the everyday shape of a remote binding.
func BenchmarkClusterParallelMediatedRemoteCall(b *testing.B) {
	h := startBenchCluster(b)
	sys := h.System("n1")
	if _, err := sys.Call("Front", "fetch", "warm"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := sys.Call("Front", "fetch", "k"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkClusterLiveMigration measures one complete cross-node handoff —
// quiesce, snapshot, ship, adopt, repoint, resume — under a light
// background load that keeps the channel non-idle.
func BenchmarkClusterLiveMigration(b *testing.B) {
	h := startBenchCluster(b)
	sys1, sys2 := h.System("n1"), h.System("n2")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = sys1.Call("Front", "fetch", fmt.Sprintf("k%d", i))
		}
	}()
	systems := map[string]*aas.System{"n1": sys1, "n2": sys2}
	owner := "n2"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target := "n1"
		if owner == "n1" {
			target = "n2"
		}
		if err := systems[owner].Migrate("Store", netsim.NodeID(target)); err != nil {
			b.Fatal(err)
		}
		owner = target
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}
